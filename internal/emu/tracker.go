package emu

import (
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/socialtube/socialtube/internal/ctrl"
	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
)

// TrackerConfig sets the central server's parameters.
type TrackerConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// UplinkBps is the server's upload capacity; concurrent chunk serves
	// queue behind each other, reproducing server-overload delays.
	UplinkBps int64
	// ChunkPayload is the number of bytes actually shipped per chunk
	// (scaled down from the real chunk size to keep runs fast; delivery
	// timing uses UplinkBps against this payload).
	ChunkPayload int
	// Seed drives the tracker's random peer recommendations.
	Seed int64
	// JoinPeers bounds how many neighbours one join response recommends.
	JoinPeers int
	// ISPs partitions peers into that many ISPs for PA-VoD's
	// ISP-localized peer assistance (Huang et al.): watch-start
	// redirects only point at watchers in the requester's ISP. Values
	// below 2 disable locality.
	ISPs int
}

// DefaultTrackerConfig returns settings scaled for loopback experiments.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{
		Addr:         "127.0.0.1:0",
		UplinkBps:    8_000_000,
		ChunkPayload: 8 << 10,
		Seed:         1,
		JoinPeers:    12,
	}
}

// Tracker is the central VoD server: it tracks overlay membership (channel
// overlays for SocialTube, per-video overlays for NetTube, current watchers
// for PA-VoD), recommends neighbours on join, publishes channel popularity
// lists and serves chunks from a finite uplink.
type Tracker struct {
	cfg   TrackerConfig
	tr    *trace.Trace
	cond  *Conditions
	ln    net.Listener
	wg    sync.WaitGroup
	close chan struct{}

	// ctr is updated with atomics (some handlers touch it outside t.mu)
	// and read lock-free by MetricsSnapshot while the run is live.
	ctr obs.Counters

	// down simulates a tracker outage: requests are read and then
	// dropped without a response, so clients see timeouts, not resets.
	down atomic.Bool
	// capacityBits holds a float64 uplink scale in (0,1] (0 means 1),
	// the server-brownout knob.
	capacityBits atomic.Uint64

	mu    sync.Mutex
	g     *dist.RNG
	addrs map[int]string
	// Membership state lives in replicated, versioned tables (tombstoned
	// departures, last-writer-wins merge) so shard replicas reconcile by
	// anti-entropy gossip. On a single unreplicated tracker they behave
	// exactly like the plain maps they replaced: Live() hands handlers an
	// id -> addr map and every selection goes through a sorted view.
	//
	// channels: online SocialTube members per channel overlay. Membership
	// is exclusive — a peer's home is one channel, so registering it under
	// a new channel tombstones it everywhere else (stale entries used to
	// outlive a home switch and feed dead recommendations).
	channels *ctrl.MemberTable
	// videos: online NetTube members per per-video overlay.
	videos *ctrl.MemberTable
	// watchers: PA-VoD current watchers per video.
	watchers *ctrl.MemberTable
	// busyUntil models the FIFO uplink queue.
	busyUntil time.Time
	// servedBytes counts bytes the server shipped.
	servedBytes int64
	// requests counts handled messages by type (observability).
	requests map[MsgType]int64
	// byCat indexes channels by primary category.
	byCat map[trace.CategoryID][]trace.ChannelID

	// Anti-entropy gossip between this replica and its shard siblings
	// (configured by StartGossip; zero value = standalone tracker).
	gossipMu       sync.Mutex
	gossipAddrs    []string
	gossipSelf     int
	gossipInterval time.Duration
	gossipTimeout  time.Duration
	gossiper       *ctrl.Gossiper
}

// NewTracker builds a tracker over the trace. Call Start to begin serving.
func NewTracker(cfg TrackerConfig, tr *trace.Trace, cond *Conditions) (*Tracker, error) {
	if tr == nil || len(tr.Videos) == 0 {
		return nil, fmt.Errorf("%w: tracker needs a non-empty trace", dist.ErrBadParameter)
	}
	if cfg.UplinkBps <= 0 || cfg.ChunkPayload <= 0 || cfg.JoinPeers <= 0 {
		return nil, fmt.Errorf("%w: tracker config %+v", dist.ErrBadParameter, cfg)
	}
	t := &Tracker{
		cfg:      cfg,
		tr:       tr,
		cond:     cond,
		close:    make(chan struct{}),
		g:        dist.NewRNG(cfg.Seed),
		addrs:    make(map[int]string),
		channels: ctrl.NewMemberTable(0),
		videos:   ctrl.NewMemberTable(0),
		watchers: ctrl.NewMemberTable(0),
		requests: make(map[MsgType]int64),
		byCat:    make(map[trace.CategoryID][]trace.ChannelID),
	}
	for _, ch := range tr.Channels {
		t.byCat[ch.Primary] = append(t.byCat[ch.Primary], ch.ID)
	}
	return t, nil
}

// Start begins listening and serving requests.
func (t *Tracker) Start() error {
	ln, err := net.Listen("tcp", t.cfg.Addr)
	if err != nil {
		return fmt.Errorf("tracker listen: %w", err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// StartGossip turns on anti-entropy with this replica's shard siblings:
// replicaAddrs lists every replica of the shard (this one included) in
// replica order, self is this replica's index. Every interval the replica
// exchanges full membership snapshots with one seeded-rotation sibling
// and both sides merge by version. Call after every replica of the shard
// has Started (their addresses must be known) and before peers register,
// so the tables' version stamps carry the replica id from the first
// write. No-op for single-replica shards.
func (t *Tracker) StartGossip(seed int64, replicaAddrs []string, self int, interval, timeout time.Duration) {
	t.channels.SetNode(self)
	t.videos.SetNode(self)
	t.watchers.SetNode(self)
	g := ctrl.NewGossiper(seed, self, len(replicaAddrs))
	if g == nil || interval <= 0 {
		return
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	t.gossipMu.Lock()
	t.gossipAddrs = append([]string(nil), replicaAddrs...)
	t.gossipSelf = self
	t.gossipInterval = interval
	t.gossipTimeout = timeout
	t.gossiper = g
	t.gossipMu.Unlock()
	t.wg.Add(1)
	go t.gossipLoop()
}

// gossipLoop drives the replica's anti-entropy rounds until Stop. A
// replica in a simulated outage neither initiates nor (via handle's down
// check) answers sync exchanges — it diverges while dark and re-converges
// after recovery, exactly the takeover path the gossip exists for.
func (t *Tracker) gossipLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.gossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.close:
			return
		case <-ticker.C:
		}
		if t.down.Load() {
			continue
		}
		t.gossipMu.Lock()
		partner := t.gossipAddrs[t.gossiper.Next()]
		timeout := t.gossipTimeout
		t.gossipMu.Unlock()
		resp, err := rpc(partner, &Message{Type: MsgSync, From: -1, Sync: t.syncSnapshot()}, timeout)
		if err != nil || resp.Type != MsgOK {
			continue
		}
		t.syncMerge(resp.Sync)
	}
}

// Membership table names on the wire.
const (
	syncTableChannels = "channels"
	syncTableVideos   = "videos"
	syncTableWatchers = "watchers"
)

// syncSnapshot captures every membership table in wire form.
func (t *Tracker) syncSnapshot() []ctrl.TableSync {
	return []ctrl.TableSync{
		{Table: syncTableChannels, Recs: t.channels.Snapshot()},
		{Table: syncTableVideos, Recs: t.videos.Snapshot()},
		{Table: syncTableWatchers, Recs: t.watchers.Snapshot()},
	}
}

// syncMerge folds a sibling's snapshot into the local tables. Unknown
// table names are skipped (wire compatibility across versions).
func (t *Tracker) syncMerge(ts []ctrl.TableSync) {
	for _, s := range ts {
		switch s.Table {
		case syncTableChannels:
			t.channels.Merge(s.Recs)
		case syncTableVideos:
			t.videos.Merge(s.Recs)
		case syncTableWatchers:
			t.watchers.Merge(s.Recs)
		}
	}
}

// handleSync is the receiving half of a push-pull round: merge the
// sender's snapshot, answer with ours.
func (t *Tracker) handleSync(req *Message) *Message {
	t.syncMerge(req.Sync)
	return &Message{Type: MsgOK, From: -1, Sync: t.syncSnapshot()}
}

// Addr returns the tracker's listen address (valid after Start).
func (t *Tracker) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Stop shuts the tracker down and waits for its goroutines.
func (t *Tracker) Stop() {
	select {
	case <-t.close:
		return
	default:
	}
	close(t.close)
	if t.ln != nil {
		t.ln.Close()
	}
	t.wg.Wait()
}

// SetDown starts (true) or ends (false) a simulated outage. While down the
// tracker accepts connections and reads requests but never answers — the
// failure mode a request timeout plus retry is designed for.
func (t *Tracker) SetDown(v bool) {
	t.down.Store(v)
}

// Down reports whether the tracker is in a simulated outage.
func (t *Tracker) Down() bool {
	return t.down.Load()
}

// SetCapacityFactor scales the server's uplink by f in (0,1] — a brownout.
// Values outside (0,1] restore full capacity.
func (t *Tracker) SetCapacityFactor(f float64) {
	if f <= 0 || f > 1 {
		f = 1
	}
	t.capacityBits.Store(math.Float64bits(f))
}

func (t *Tracker) capacityFactor() float64 {
	b := t.capacityBits.Load()
	if b == 0 {
		return 1
	}
	return math.Float64frombits(b)
}

// Counters returns a snapshot of the tracker's protocol counters.
func (t *Tracker) Counters() obs.Counters {
	return t.ctr.Snapshot()
}

// ServedBytes returns the bytes shipped by the server so far.
func (t *Tracker) ServedBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.servedBytes
}

func (t *Tracker) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.close:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handle(conn)
		}()
	}
}

// trackerHandleBudget bounds one request exchange end to end; chunk
// serves queued beyond it time out exactly as an overloaded server's
// clients would observe.
const trackerHandleBudget = 10 * time.Second

func (t *Tracker) handle(conn net.Conn) {
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(trackerHandleBudget)); err != nil {
		return
	}
	req, err := ReadMessage(conn)
	if err != nil {
		atomic.AddUint64(&t.ctr.FramesMalformed, 1)
		return
	}
	if err := req.Validate(); err != nil {
		atomic.AddUint64(&t.ctr.FramesRejected, 1)
		return
	}
	if t.down.Load() {
		return // simulated outage: the request vanishes
	}
	if t.cond.Drop() {
		return // simulated loss: no response
	}
	time.Sleep(t.cond.Latency(-1, req.From))
	resp := t.dispatch(req)
	if resp != nil {
		act, stall := t.cond.nextChaos()
		writeMessageChaos(conn, resp, act, stall, &t.ctr)
	}
}

// Stats returns how many requests the tracker handled, by message type.
func (t *Tracker) Stats() map[MsgType]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[MsgType]int64, len(t.requests))
	for k, v := range t.requests {
		out[k] = v
	}
	return out
}

// TrackerMetrics is the tracker's live observability snapshot, served as
// JSON from the /metrics endpoint while an emulated cluster runs.
type TrackerMetrics struct {
	Peers          int               `json:"peers"`
	ServedBytes    int64             `json:"servedBytes"`
	RequestsByType map[MsgType]int64 `json:"requestsByType"`
	Counters       obs.Counters      `json:"counters"`
}

// MetricsSnapshot captures the tracker's current metrics. Safe to call from
// any goroutine while the tracker serves.
func (t *Tracker) MetricsSnapshot() TrackerMetrics {
	t.mu.Lock()
	m := TrackerMetrics{
		Peers:          len(t.addrs),
		ServedBytes:    t.servedBytes,
		RequestsByType: make(map[MsgType]int64, len(t.requests)),
	}
	for k, v := range t.requests {
		m.RequestsByType[k] = v
	}
	t.mu.Unlock()
	m.Counters = t.ctr.Snapshot()
	return m
}

// ServeMetrics exposes this tracker's MetricsSnapshot on addr (and the pprof
// handlers when enabled). The caller owns the returned server's lifetime.
func (t *Tracker) ServeMetrics(addr string, pprofEnabled bool) (*obs.MetricsServer, error) {
	return obs.ServeMetrics(addr, func() any { return t.MetricsSnapshot() }, nil, pprofEnabled)
}

func (t *Tracker) dispatch(req *Message) *Message {
	t.mu.Lock()
	t.requests[req.Type]++
	t.mu.Unlock()
	switch req.Type {
	case MsgRegister:
		return t.handleRegister(req)
	case MsgJoin:
		return t.handleJoin(req)
	case MsgJoinVideo:
		return t.handleJoinVideo(req)
	case MsgLeave:
		return t.handleLeave(req)
	case MsgServe:
		return t.handleServe(req)
	case MsgTopList:
		return t.handleTopList(req)
	case MsgWatchStart:
		return t.handleWatchStart(req)
	case MsgWatchDone:
		return t.handleWatchDone(req)
	case MsgHave:
		return t.handleHave(req)
	case MsgSync:
		return t.handleSync(req)
	default:
		return &Message{Type: MsgMiss, From: -1}
	}
}

func (t *Tracker) handleRegister(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[req.From] = req.Addr
	return &Message{Type: MsgOK, From: -1}
}

// handleJoin registers a SocialTube peer in a channel overlay and
// recommends a random member of that overlay plus a random member per
// sibling channel in the category (§IV-A's join assist).
func (t *Tracker) handleJoin(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[req.From] = req.Addr
	ch := trace.ChannelID(req.Channel)
	chn := t.tr.Channel(ch)
	if chn == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	atomic.AddUint64(&t.ctr.OverlayJoins, 1)
	resp := &Message{Type: MsgJoinOK, From: -1}
	// One random member of the channel overlay itself.
	if info, ok := t.randomMemberLocked(t.channels.Live(int64(ch)), req.From, int(ch)); ok {
		resp.Peers = append(resp.Peers, info)
	}
	// Subscribers become members; non-subscribers only get category
	// recommendations (the Visited field doubles as a "member" flag: the
	// peer sets TTL=1 when it wants membership). Membership is exclusive:
	// a peer whose home moved is tombstoned under its previous channel,
	// so it is never again recommended for an overlay it left (it would
	// reject the inner link, wasting the requester's entry point).
	if req.TTL > 0 {
		t.channels.PutExclusive(int64(ch), req.From, req.Addr)
	}
	// One random member per sibling channel of the category.
	cat := chn.Primary
	chans := t.byCat[cat]
	perm := t.g.Perm(len(chans))
	for _, idx := range perm {
		if len(resp.Peers) >= t.cfg.JoinPeers {
			break
		}
		sib := chans[idx]
		if sib == ch {
			continue
		}
		if info, ok := t.randomMemberLocked(t.channels.Live(int64(sib)), req.From, int(sib)); ok {
			resp.Peers = append(resp.Peers, info)
		}
	}
	return resp
}

// handleJoinVideo registers a NetTube peer in a per-video overlay and
// returns current members to connect to.
func (t *Tracker) handleJoinVideo(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[req.From] = req.Addr
	v := trace.VideoID(req.Video)
	if t.tr.Video(v) == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	atomic.AddUint64(&t.ctr.OverlayJoins, 1)
	resp := &Message{Type: MsgJoinOK, From: -1}
	members := t.videos.Live(int64(v))
	for _, id := range sortedMemberIDs(members, req.From) {
		resp.Peers = append(resp.Peers, PeerInfo{ID: id, Addr: members[id], Channel: req.Video})
		if len(resp.Peers) >= t.cfg.JoinPeers {
			break
		}
	}
	t.videos.Put(int64(v), req.From, req.Addr)
	return resp
}

func (t *Tracker) handleLeave(req *Message) *Message {
	atomic.AddUint64(&t.ctr.OverlayLeaves, 1)
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.addrs, req.From)
	// Tombstones, not deletions: gossip carries the departure to the
	// shard's other replicas instead of letting them resurrect the peer.
	t.channels.RemoveEverywhere(req.From)
	t.videos.RemoveEverywhere(req.From)
	t.watchers.RemoveEverywhere(req.From)
	return &Message{Type: MsgOK, From: -1}
}

// handleServe ships one chunk from the server's finite uplink. The response
// is delayed by the FIFO queue occupancy plus transmission time, so an
// overloaded server exhibits the growing startup delays of Fig. 17.
func (t *Tracker) handleServe(req *Message) *Message {
	if t.tr.Video(trace.VideoID(req.Video)) == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	bps := float64(t.cfg.UplinkBps) * t.capacityFactor()
	if bps < 1 {
		bps = 1
	}
	tx := time.Duration(float64(t.cfg.ChunkPayload*8) / bps * float64(time.Second))
	t.mu.Lock()
	now := time.Now()
	start := now
	if t.busyUntil.After(start) {
		start = t.busyUntil
	}
	done := start.Add(tx)
	t.busyUntil = done
	t.servedBytes += int64(t.cfg.ChunkPayload)
	t.mu.Unlock()
	atomic.AddUint64(&t.ctr.ChunksServer, 1)
	time.Sleep(done.Sub(now))
	return &Message{
		Type:    MsgOK,
		From:    -1,
		Video:   req.Video,
		Chunk:   req.Chunk,
		Payload: make([]byte, t.cfg.ChunkPayload),
	}
}

// handleTopList returns the ids of the channel's most popular videos — the
// popularity list the server publishes for prefetching (§IV-B).
func (t *Tracker) handleTopList(req *Message) *Message {
	ch := t.tr.Channel(trace.ChannelID(req.Channel))
	if ch == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	n := req.TTL // the requested list length rides in TTL
	if n <= 0 || n > len(ch.Videos) {
		n = len(ch.Videos)
	}
	vids := make([]int, 0, n)
	for _, v := range ch.Videos[:n] {
		vids = append(vids, int(v))
	}
	return &Message{Type: MsgOK, From: -1, Videos: vids}
}

// handleWatchStart registers a PA-VoD watcher and points it at another
// current watcher if one exists.
func (t *Tracker) handleWatchStart(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[req.From] = req.Addr
	v := trace.VideoID(req.Video)
	if t.tr.Video(v) == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	resp := &Message{Type: MsgOK, From: -1, Provider: -1}
	candidates := t.watchers.Live(int64(v))
	if t.cfg.ISPs > 1 {
		// ISP-localized assistance: only same-ISP watchers qualify.
		local := make(map[int]string)
		for id, addr := range candidates {
			if id%t.cfg.ISPs == req.From%t.cfg.ISPs {
				local[id] = addr
			}
		}
		candidates = local
	}
	atomic.AddUint64(&t.ctr.LookupsServer, 1)
	// Rank up to maxQueryProviders current watchers from a seeded
	// rotation, so one death doesn't force a round-trip back here.
	if ids := sortedMemberIDs(candidates, req.From); len(ids) > 0 {
		off := t.g.Intn(len(ids))
		for i := 0; i < len(ids) && len(resp.Providers) < maxQueryProviders; i++ {
			id := ids[(off+i)%len(ids)]
			resp.Providers = append(resp.Providers, PeerInfo{ID: id, Addr: candidates[id]})
		}
		resp.Provider = resp.Providers[0].ID
		resp.ProviderAddr = resp.Providers[0].Addr
		atomic.AddUint64(&t.ctr.HitsServerAssist, 1)
	}
	t.watchers.Put(int64(v), req.From, req.Addr)
	return resp
}

func (t *Tracker) handleWatchDone(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watchers.Remove(int64(req.Video), req.From)
	return &Message{Type: MsgOK, From: -1}
}

// handleHave records that a NetTube peer caches a video (so the server can
// direct first requests at it).
func (t *Tracker) handleHave(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := trace.VideoID(req.Video)
	if t.tr.Video(v) == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	t.videos.Put(int64(v), req.From, req.Addr)
	return &Message{Type: MsgOK, From: -1}
}

// randomMemberLocked picks a seeded-random member other than exclude. The
// caller must hold t.mu.
func (t *Tracker) randomMemberLocked(m map[int]string, exclude, channel int) (PeerInfo, bool) {
	ids := sortedMemberIDs(m, exclude)
	if len(ids) == 0 {
		return PeerInfo{}, false
	}
	id := ids[t.g.Intn(len(ids))]
	return PeerInfo{ID: id, Addr: m[id], Channel: channel}, true
}

// sortedMemberIDs returns m's keys minus exclude in ascending order. Go
// randomizes map iteration per run, so every selection the tracker makes
// from a member map must go through a sorted view to stay reproducible
// under one seed.
func sortedMemberIDs(m map[int]string, exclude int) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		if id != exclude {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}
