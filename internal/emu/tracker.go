package emu

import (
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/socialtube/socialtube/internal/ctrl"
	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
)

// TrackerConfig sets the central server's parameters.
type TrackerConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// UplinkBps is the server's upload capacity; concurrent chunk serves
	// queue behind each other, reproducing server-overload delays.
	UplinkBps int64
	// ChunkPayload is the number of bytes actually shipped per chunk
	// (scaled down from the real chunk size to keep runs fast; delivery
	// timing uses UplinkBps against this payload).
	ChunkPayload int
	// Seed drives the tracker's random peer recommendations.
	Seed int64
	// JoinPeers bounds how many neighbours one join response recommends.
	JoinPeers int
	// ISPs partitions peers into that many ISPs for PA-VoD's
	// ISP-localized peer assistance (Huang et al.): watch-start
	// redirects only point at watchers in the requester's ISP. Values
	// below 2 disable locality.
	ISPs int
	// TombstoneHorizon is the version-clock age (in table ticks) past
	// which the gossip loop garbage-collects membership tombstones; 0
	// uses defaultTombstoneHorizon. Only replicas with gossip configured
	// compact — a standalone tracker never ships snapshots, so its
	// tombstones cost nothing on the wire.
	TombstoneHorizon uint64
}

// DefaultTrackerConfig returns settings scaled for loopback experiments.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{
		Addr:         "127.0.0.1:0",
		UplinkBps:    8_000_000,
		ChunkPayload: 8 << 10,
		Seed:         1,
		JoinPeers:    12,
	}
}

// Tracker is the central VoD server: it tracks overlay membership (channel
// overlays for SocialTube, per-video overlays for NetTube, current watchers
// for PA-VoD), recommends neighbours on join, publishes channel popularity
// lists and serves chunks from a finite uplink.
type Tracker struct {
	cfg   TrackerConfig
	tr    *trace.Trace
	cond  *Conditions
	ln    net.Listener
	wg    sync.WaitGroup
	close chan struct{}

	// ctr is updated with atomics (some handlers touch it outside t.mu)
	// and read lock-free by MetricsSnapshot while the run is live.
	ctr obs.Counters

	// down simulates a tracker outage: requests are read and then
	// dropped without a response, so clients see timeouts, not resets.
	down atomic.Bool
	// capacityBits holds a float64 uplink scale in (0,1] (0 means 1),
	// the server-brownout knob.
	capacityBits atomic.Uint64

	mu    sync.Mutex
	g     *dist.RNG
	addrs map[int]string
	// Membership state lives in replicated, versioned tables (tombstoned
	// departures, last-writer-wins merge) so shard replicas reconcile by
	// anti-entropy gossip. On a single unreplicated tracker they behave
	// exactly like the plain maps they replaced: Live() hands handlers an
	// id -> addr map and every selection goes through a sorted view.
	//
	// channels: online SocialTube members per channel overlay. Membership
	// is exclusive — a peer's home is one channel, so registering it under
	// a new channel tombstones it everywhere else (stale entries used to
	// outlive a home switch and feed dead recommendations).
	channels *ctrl.MemberTable
	// videos: online NetTube members per per-video overlay.
	videos *ctrl.MemberTable
	// watchers: PA-VoD current watchers per video.
	watchers *ctrl.MemberTable
	// busyUntil models the FIFO uplink queue.
	busyUntil time.Time
	// servedBytes counts bytes the server shipped.
	servedBytes int64
	// requests counts handled messages by type (observability).
	requests map[MsgType]int64
	// byCat indexes channels by primary category.
	byCat map[trace.CategoryID][]trace.ChannelID

	// Anti-entropy gossip across the plane (configured by StartGossip;
	// zero value = standalone tracker). Same-shard siblings exchange full
	// membership snapshots; cross-shard partners exchange liveness only
	// (beats, shard-status verdicts, the ring epoch).
	gossipMu       sync.Mutex
	gossipAddrs    []string // own shard's replica endpoints
	gossipSelf     int      // replica index within the shard
	gossipShard    int
	gossipInterval time.Duration
	gossipTimeout  time.Duration
	gossiper       *ctrl.Gossiper // same-shard rotation (nil when single-replica)
	gossipOthers   []gossipPeer   // other shards' endpoints, shard-major
	gossipNext     int            // seeded rotation cursor over gossipOthers

	// live is the plane failure detector (nil on 1-shard planes and
	// standalone trackers); suspicionRounds tunes it (0 = default).
	// declaredNano records the wall time of this replica's first shard
	// death verdict — the takeover figure's time-to-takeover numerator.
	live            atomic.Pointer[ctrl.Liveness]
	suspicionRounds int
	declaredNano    atomic.Int64
	// side is this replica's partition side id (its replica index), read
	// by the receive path's partition backstop.
	side atomic.Int32
}

// gossipPeer is one cross-shard gossip partner.
type gossipPeer struct {
	addr           string
	shard, replica int
}

// defaultSuspicionRounds is how many of a replica's own gossip rounds
// every beat of a shard must stay frozen before the shard is declared
// dead. Rounds, not wall-clock: detection latency is deterministic in
// the gossip schedule.
const defaultSuspicionRounds = 5

// defaultTombstoneHorizon is the version-clock age past which gossiping
// replicas compact tombstones — thousands of ticks against per-round
// divergence of at most a few hundred writes (see
// ctrl.MemberTable.CompactTombstones).
const defaultTombstoneHorizon = 1 << 12

// NewTracker builds a tracker over the trace. Call Start to begin serving.
func NewTracker(cfg TrackerConfig, tr *trace.Trace, cond *Conditions) (*Tracker, error) {
	if tr == nil || len(tr.Videos) == 0 {
		return nil, fmt.Errorf("%w: tracker needs a non-empty trace", dist.ErrBadParameter)
	}
	if cfg.UplinkBps <= 0 || cfg.ChunkPayload <= 0 || cfg.JoinPeers <= 0 {
		return nil, fmt.Errorf("%w: tracker config %+v", dist.ErrBadParameter, cfg)
	}
	t := &Tracker{
		cfg:      cfg,
		tr:       tr,
		cond:     cond,
		close:    make(chan struct{}),
		g:        dist.NewRNG(cfg.Seed),
		addrs:    make(map[int]string),
		channels: ctrl.NewMemberTable(0),
		videos:   ctrl.NewMemberTable(0),
		watchers: ctrl.NewMemberTable(0),
		requests: make(map[MsgType]int64),
		byCat:    make(map[trace.CategoryID][]trace.ChannelID),
	}
	for _, ch := range tr.Channels {
		t.byCat[ch.Primary] = append(t.byCat[ch.Primary], ch.ID)
	}
	return t, nil
}

// Start begins listening and serving requests.
func (t *Tracker) Start() error {
	ln, err := net.Listen("tcp", t.cfg.Addr)
	if err != nil {
		return fmt.Errorf("tracker listen: %w", err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// StartGossip turns on anti-entropy for replica (shard, replica) of the
// plane: plane lists every shard's replica endpoints in order (this
// replica included). Every interval the replica exchanges full membership
// snapshots with one seeded-rotation shard sibling, and — on multi-shard
// planes — liveness (heartbeat versions, shard-status verdicts, the ring
// epoch) with one seeded-rotation replica of another shard, so any
// survivor can declare a whole shard dead after suspicionRounds of its
// own rounds and the verdict gossips plane-wide. The per-shard gossip
// seed is derived as seed + shard*7919, preserving the schedule the
// sharded control plane has always used. Call after every replica of the
// plane has Started and before peers register, so the tables' version
// stamps carry the replica id from the first write. No-op for a 1x1
// plane (the legacy single tracker's wire traffic stays byte-identical).
func (t *Tracker) StartGossip(seed int64, plane [][]string, shard, replica int, interval, timeout time.Duration) {
	t.channels.SetNode(replica)
	t.videos.SetNode(replica)
	t.watchers.SetNode(replica)
	t.side.Store(int32(replica))
	if shard < 0 || shard >= len(plane) {
		return
	}
	eff := seed + int64(shard)*7919
	g := ctrl.NewGossiper(eff, replica, len(plane[shard]))
	var others []gossipPeer
	if len(plane) > 1 {
		for s, reps := range plane {
			if s == shard {
				continue
			}
			for r, addr := range reps {
				others = append(others, gossipPeer{addr: addr, shard: s, replica: r})
			}
		}
		sus := t.suspicionRounds
		if sus <= 0 {
			sus = defaultSuspicionRounds
		}
		t.live.Store(ctrl.NewLiveness(len(plane), shard, replica, sus))
	}
	if (g == nil && len(others) == 0) || interval <= 0 {
		return
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	t.gossipMu.Lock()
	t.gossipAddrs = append([]string(nil), plane[shard]...)
	t.gossipSelf = replica
	t.gossipShard = shard
	t.gossipInterval = interval
	t.gossipTimeout = timeout
	t.gossiper = g
	t.gossipOthers = others
	if len(others) > 0 {
		// Seeded rotation start, like ctrl.NewGossiper's, so replicas
		// spread their cross-shard probes instead of thundering.
		t.gossipNext = dist.NewRNG(eff ^ int64(replica)*104_729).Intn(len(others))
	}
	t.gossipMu.Unlock()
	t.wg.Add(1)
	go t.gossipLoop()
}

// gossipLoop drives the replica's anti-entropy rounds until Stop. A
// replica in a simulated outage neither initiates nor (via handle's down
// check) answers exchanges — its beats freeze everywhere, which is
// exactly the signal the suspicion timeout turns into a death verdict.
// Partition windows sever rounds at the sender: both gossip legs know
// their partner's replica index, so a cut exchange is skipped outright
// and the two sides' views diverge until heal.
func (t *Tracker) gossipLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.gossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.close:
			return
		case <-ticker.C:
		}
		if t.down.Load() {
			continue
		}
		t.gossipMu.Lock()
		self := t.gossipSelf
		timeout := t.gossipTimeout
		sibIdx := -1
		var sibAddr string
		if t.gossiper != nil {
			sibIdx = t.gossiper.Next()
			sibAddr = t.gossipAddrs[sibIdx]
		}
		var cross gossipPeer
		hasCross := false
		if len(t.gossipOthers) > 0 {
			cross = t.gossipOthers[t.gossipNext%len(t.gossipOthers)]
			t.gossipNext++
			hasCross = true
		}
		t.gossipMu.Unlock()
		if live := t.live.Load(); live != nil {
			t.noteTransitions(live.Tick(), nil)
		}
		if sibIdx >= 0 && !t.cond.Severed(self, sibIdx) {
			req := &Message{Type: MsgSync, From: -1, Sync: t.syncSnapshot()}
			t.attachLiveness(req)
			if resp, err := rpc(sibAddr, req, timeout); err == nil && resp.Type == MsgOK {
				t.syncMerge(resp.Sync)
				t.mergeLiveness(resp)
			}
		}
		if hasCross && t.live.Load() != nil && !t.cond.Severed(self, cross.replica) {
			req := &Message{Type: MsgSync, From: -1}
			t.attachLiveness(req)
			if resp, err := rpc(cross.addr, req, timeout); err == nil && resp.Type == MsgOK {
				t.mergeLiveness(resp)
			}
		}
		t.compactTables()
	}
}

// attachLiveness piggybacks the detector's state on a sync exchange.
func (t *Tracker) attachLiveness(m *Message) {
	live := t.live.Load()
	if live == nil {
		return
	}
	m.Beats = live.Beats()
	m.Status = live.Status()
	m.Epoch = int64(live.Epoch())
}

// mergeLiveness folds a partner's piggybacked liveness in and accounts
// the transitions it caused.
func (t *Tracker) mergeLiveness(m *Message) {
	live := t.live.Load()
	if live == nil || (len(m.Beats) == 0 && len(m.Status) == 0 && m.Epoch == 0) {
		return
	}
	revived := live.MergeBeats(m.Beats)
	died, revived2 := live.MergeStatus(m.Status, uint64(m.Epoch))
	t.noteTransitions(died, append(revived, revived2...))
}

// noteTransitions accounts shard death/revival verdicts this replica
// observed (locally declared or adopted from gossip) and timestamps the
// first death for the takeover figure.
func (t *Tracker) noteTransitions(died, revived []int) {
	if len(died) > 0 {
		atomic.AddUint64(&t.ctr.ShardsDeclaredDead, uint64(len(died)))
		t.declaredNano.CompareAndSwap(0, time.Now().UnixNano())
	}
	if len(revived) > 0 {
		atomic.AddUint64(&t.ctr.ShardsRevived, uint64(len(revived)))
	}
}

// compactTables garbage-collects membership tombstones past the horizon.
// Runs once per gossip round, so only replicas that gossip compact.
func (t *Tracker) compactTables() {
	h := t.cfg.TombstoneHorizon
	if h == 0 {
		h = defaultTombstoneHorizon
	}
	t.channels.CompactTombstones(h)
	t.videos.CompactTombstones(h)
	t.watchers.CompactTombstones(h)
}

// Epoch returns the plane's ring epoch as this replica knows it (0 when
// liveness is off or no shard has ever changed status).
func (t *Tracker) Epoch() uint64 {
	if live := t.live.Load(); live != nil {
		return live.Epoch()
	}
	return 0
}

// DeadShards returns the dead-shard bitmask as this replica knows it.
func (t *Tracker) DeadShards() uint64 {
	if live := t.live.Load(); live != nil {
		return live.DeadMask()
	}
	return 0
}

// TakeoverDeclaredAt returns the wall time (UnixNano) of this replica's
// first shard-death verdict, 0 if it never declared one.
func (t *Tracker) TakeoverDeclaredAt() int64 {
	return t.declaredNano.Load()
}

// Membership table names on the wire.
const (
	syncTableChannels = "channels"
	syncTableVideos   = "videos"
	syncTableWatchers = "watchers"
)

// syncSnapshot captures every membership table in wire form.
func (t *Tracker) syncSnapshot() []ctrl.TableSync {
	return []ctrl.TableSync{
		{Table: syncTableChannels, Recs: t.channels.Snapshot()},
		{Table: syncTableVideos, Recs: t.videos.Snapshot()},
		{Table: syncTableWatchers, Recs: t.watchers.Snapshot()},
	}
}

// syncMerge folds a sibling's snapshot into the local tables. Unknown
// table names are skipped (wire compatibility across versions).
func (t *Tracker) syncMerge(ts []ctrl.TableSync) {
	for _, s := range ts {
		switch s.Table {
		case syncTableChannels:
			t.channels.Merge(s.Recs)
		case syncTableVideos:
			t.videos.Merge(s.Recs)
		case syncTableWatchers:
			t.watchers.Merge(s.Recs)
		}
	}
}

// handleSync is the receiving half of a push-pull round: merge the
// sender's snapshot and liveness, answer with ours. A liveness-only
// request (no tables — the cross-shard leg) gets a liveness-only reply,
// so cross-shard exchanges never ship membership snapshots.
func (t *Tracker) handleSync(req *Message) *Message {
	t.mergeLiveness(req)
	resp := &Message{Type: MsgOK, From: -1}
	if len(req.Sync) > 0 {
		t.syncMerge(req.Sync)
		resp.Sync = t.syncSnapshot()
	}
	t.attachLiveness(resp)
	return resp
}

// Addr returns the tracker's listen address (valid after Start).
func (t *Tracker) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Stop shuts the tracker down and waits for its goroutines.
func (t *Tracker) Stop() {
	select {
	case <-t.close:
		return
	default:
	}
	close(t.close)
	if t.ln != nil {
		t.ln.Close()
	}
	t.wg.Wait()
}

// SetDown starts (true) or ends (false) a simulated outage. While down the
// tracker accepts connections and reads requests but never answers — the
// failure mode a request timeout plus retry is designed for.
func (t *Tracker) SetDown(v bool) {
	t.down.Store(v)
}

// Down reports whether the tracker is in a simulated outage.
func (t *Tracker) Down() bool {
	return t.down.Load()
}

// SetCapacityFactor scales the server's uplink by f in (0,1] — a brownout.
// Values outside (0,1] restore full capacity.
func (t *Tracker) SetCapacityFactor(f float64) {
	if f <= 0 || f > 1 {
		f = 1
	}
	t.capacityBits.Store(math.Float64bits(f))
}

func (t *Tracker) capacityFactor() float64 {
	b := t.capacityBits.Load()
	if b == 0 {
		return 1
	}
	return math.Float64frombits(b)
}

// Counters returns a snapshot of the tracker's protocol counters.
func (t *Tracker) Counters() obs.Counters {
	return t.ctr.Snapshot()
}

// ServedBytes returns the bytes shipped by the server so far.
func (t *Tracker) ServedBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.servedBytes
}

func (t *Tracker) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.close:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handle(conn)
		}()
	}
}

// trackerHandleBudget bounds one request exchange end to end; chunk
// serves queued beyond it time out exactly as an overloaded server's
// clients would observe.
const trackerHandleBudget = 10 * time.Second

func (t *Tracker) handle(conn net.Conn) {
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(trackerHandleBudget)); err != nil {
		return
	}
	req, err := ReadMessage(conn)
	if err != nil {
		atomic.AddUint64(&t.ctr.FramesMalformed, 1)
		return
	}
	if err := req.Validate(); err != nil {
		atomic.AddUint64(&t.ctr.FramesRejected, 1)
		return
	}
	if t.down.Load() {
		return // simulated outage: the request vanishes
	}
	if req.From >= 0 && t.cond.Severed(req.From, int(t.side.Load())) {
		return // partitioned: the peer is on the other side of the cut
	}
	if t.cond.Drop() {
		return // simulated loss: no response
	}
	time.Sleep(t.cond.Latency(-1, req.From))
	resp := t.dispatch(req)
	if resp != nil {
		// Ride the current ring view on every peer-facing response, so
		// peers learn about takeovers from ordinary traffic. Epoch 0
		// (healthy plane or liveness off) stamps nothing: omitempty
		// keeps the frames byte-identical to the pre-liveness wire.
		if live := t.live.Load(); live != nil {
			if e := live.Epoch(); e > 0 {
				resp.Epoch = int64(e)
				resp.DeadShards = live.DeadMask()
			}
		}
		act, stall := t.cond.nextChaos()
		writeMessageChaos(conn, resp, act, stall, &t.ctr)
	}
}

// Stats returns how many requests the tracker handled, by message type.
func (t *Tracker) Stats() map[MsgType]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[MsgType]int64, len(t.requests))
	for k, v := range t.requests {
		out[k] = v
	}
	return out
}

// TrackerMetrics is the tracker's live observability snapshot, served as
// JSON from the /metrics endpoint while an emulated cluster runs.
type TrackerMetrics struct {
	Peers          int               `json:"peers"`
	ServedBytes    int64             `json:"servedBytes"`
	RequestsByType map[MsgType]int64 `json:"requestsByType"`
	Counters       obs.Counters      `json:"counters"`
}

// MetricsSnapshot captures the tracker's current metrics. Safe to call from
// any goroutine while the tracker serves.
func (t *Tracker) MetricsSnapshot() TrackerMetrics {
	t.mu.Lock()
	m := TrackerMetrics{
		Peers:          len(t.addrs),
		ServedBytes:    t.servedBytes,
		RequestsByType: make(map[MsgType]int64, len(t.requests)),
	}
	for k, v := range t.requests {
		m.RequestsByType[k] = v
	}
	t.mu.Unlock()
	m.Counters = t.ctr.Snapshot()
	return m
}

// ServeMetrics exposes this tracker's MetricsSnapshot on addr (and the pprof
// handlers when enabled). The caller owns the returned server's lifetime.
func (t *Tracker) ServeMetrics(addr string, pprofEnabled bool) (*obs.MetricsServer, error) {
	return obs.ServeMetrics(addr, func() any { return t.MetricsSnapshot() }, nil, pprofEnabled)
}

func (t *Tracker) dispatch(req *Message) *Message {
	t.mu.Lock()
	t.requests[req.Type]++
	t.mu.Unlock()
	switch req.Type {
	case MsgRegister:
		return t.handleRegister(req)
	case MsgJoin:
		return t.handleJoin(req)
	case MsgJoinVideo:
		return t.handleJoinVideo(req)
	case MsgLeave:
		return t.handleLeave(req)
	case MsgServe:
		return t.handleServe(req)
	case MsgTopList:
		return t.handleTopList(req)
	case MsgWatchStart:
		return t.handleWatchStart(req)
	case MsgWatchDone:
		return t.handleWatchDone(req)
	case MsgHave:
		return t.handleHave(req)
	case MsgSync:
		return t.handleSync(req)
	default:
		return &Message{Type: MsgMiss, From: -1}
	}
}

func (t *Tracker) handleRegister(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[req.From] = req.Addr
	return &Message{Type: MsgOK, From: -1}
}

// handleJoin registers a SocialTube peer in a channel overlay and
// recommends a random member of that overlay plus a random member per
// sibling channel in the category (§IV-A's join assist).
func (t *Tracker) handleJoin(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[req.From] = req.Addr
	ch := trace.ChannelID(req.Channel)
	chn := t.tr.Channel(ch)
	if chn == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	atomic.AddUint64(&t.ctr.OverlayJoins, 1)
	resp := &Message{Type: MsgJoinOK, From: -1}
	// One random member of the channel overlay itself.
	if info, ok := t.randomMemberLocked(t.channels.Live(int64(ch)), req.From, int(ch)); ok {
		resp.Peers = append(resp.Peers, info)
	}
	// Subscribers become members; non-subscribers only get category
	// recommendations (the Visited field doubles as a "member" flag: the
	// peer sets TTL=1 when it wants membership). Membership is exclusive:
	// a peer whose home moved is tombstoned under its previous channel,
	// so it is never again recommended for an overlay it left (it would
	// reject the inner link, wasting the requester's entry point).
	if req.TTL > 0 {
		t.channels.PutExclusive(int64(ch), req.From, req.Addr)
	}
	// One random member per sibling channel of the category.
	cat := chn.Primary
	chans := t.byCat[cat]
	perm := t.g.Perm(len(chans))
	for _, idx := range perm {
		if len(resp.Peers) >= t.cfg.JoinPeers {
			break
		}
		sib := chans[idx]
		if sib == ch {
			continue
		}
		if info, ok := t.randomMemberLocked(t.channels.Live(int64(sib)), req.From, int(sib)); ok {
			resp.Peers = append(resp.Peers, info)
		}
	}
	return resp
}

// handleJoinVideo registers a NetTube peer in a per-video overlay and
// returns current members to connect to.
func (t *Tracker) handleJoinVideo(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[req.From] = req.Addr
	v := trace.VideoID(req.Video)
	if t.tr.Video(v) == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	atomic.AddUint64(&t.ctr.OverlayJoins, 1)
	resp := &Message{Type: MsgJoinOK, From: -1}
	members := t.videos.Live(int64(v))
	for _, id := range sortedMemberIDs(members, req.From) {
		resp.Peers = append(resp.Peers, PeerInfo{ID: id, Addr: members[id], Channel: req.Video})
		if len(resp.Peers) >= t.cfg.JoinPeers {
			break
		}
	}
	t.videos.Put(int64(v), req.From, req.Addr)
	return resp
}

func (t *Tracker) handleLeave(req *Message) *Message {
	atomic.AddUint64(&t.ctr.OverlayLeaves, 1)
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.addrs, req.From)
	// Tombstones, not deletions: gossip carries the departure to the
	// shard's other replicas instead of letting them resurrect the peer.
	t.channels.RemoveEverywhere(req.From)
	t.videos.RemoveEverywhere(req.From)
	t.watchers.RemoveEverywhere(req.From)
	return &Message{Type: MsgOK, From: -1}
}

// handleServe ships one chunk from the server's finite uplink. The response
// is delayed by the FIFO queue occupancy plus transmission time, so an
// overloaded server exhibits the growing startup delays of Fig. 17.
func (t *Tracker) handleServe(req *Message) *Message {
	if t.tr.Video(trace.VideoID(req.Video)) == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	bps := float64(t.cfg.UplinkBps) * t.capacityFactor()
	if bps < 1 {
		bps = 1
	}
	tx := time.Duration(float64(t.cfg.ChunkPayload*8) / bps * float64(time.Second))
	t.mu.Lock()
	now := time.Now()
	start := now
	if t.busyUntil.After(start) {
		start = t.busyUntil
	}
	done := start.Add(tx)
	t.busyUntil = done
	t.servedBytes += int64(t.cfg.ChunkPayload)
	t.mu.Unlock()
	atomic.AddUint64(&t.ctr.ChunksServer, 1)
	time.Sleep(done.Sub(now))
	return &Message{
		Type:    MsgOK,
		From:    -1,
		Video:   req.Video,
		Chunk:   req.Chunk,
		Payload: make([]byte, t.cfg.ChunkPayload),
	}
}

// handleTopList returns the ids of the channel's most popular videos — the
// popularity list the server publishes for prefetching (§IV-B).
func (t *Tracker) handleTopList(req *Message) *Message {
	ch := t.tr.Channel(trace.ChannelID(req.Channel))
	if ch == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	n := req.TTL // the requested list length rides in TTL
	if n <= 0 || n > len(ch.Videos) {
		n = len(ch.Videos)
	}
	vids := make([]int, 0, n)
	for _, v := range ch.Videos[:n] {
		vids = append(vids, int(v))
	}
	return &Message{Type: MsgOK, From: -1, Videos: vids}
}

// handleWatchStart registers a PA-VoD watcher and points it at another
// current watcher if one exists.
func (t *Tracker) handleWatchStart(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[req.From] = req.Addr
	v := trace.VideoID(req.Video)
	if t.tr.Video(v) == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	resp := &Message{Type: MsgOK, From: -1, Provider: -1}
	candidates := t.watchers.Live(int64(v))
	if t.cfg.ISPs > 1 {
		// ISP-localized assistance: only same-ISP watchers qualify.
		local := make(map[int]string)
		for id, addr := range candidates {
			if id%t.cfg.ISPs == req.From%t.cfg.ISPs {
				local[id] = addr
			}
		}
		candidates = local
	}
	atomic.AddUint64(&t.ctr.LookupsServer, 1)
	// Rank up to maxQueryProviders current watchers from a seeded
	// rotation, so one death doesn't force a round-trip back here.
	if ids := sortedMemberIDs(candidates, req.From); len(ids) > 0 {
		off := t.g.Intn(len(ids))
		for i := 0; i < len(ids) && len(resp.Providers) < maxQueryProviders; i++ {
			id := ids[(off+i)%len(ids)]
			resp.Providers = append(resp.Providers, PeerInfo{ID: id, Addr: candidates[id]})
		}
		resp.Provider = resp.Providers[0].ID
		resp.ProviderAddr = resp.Providers[0].Addr
		atomic.AddUint64(&t.ctr.HitsServerAssist, 1)
	}
	t.watchers.Put(int64(v), req.From, req.Addr)
	return resp
}

func (t *Tracker) handleWatchDone(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watchers.Remove(int64(req.Video), req.From)
	return &Message{Type: MsgOK, From: -1}
}

// handleHave records that a NetTube peer caches a video (so the server can
// direct first requests at it).
func (t *Tracker) handleHave(req *Message) *Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := trace.VideoID(req.Video)
	if t.tr.Video(v) == nil {
		return &Message{Type: MsgMiss, From: -1}
	}
	t.videos.Put(int64(v), req.From, req.Addr)
	return &Message{Type: MsgOK, From: -1}
}

// randomMemberLocked picks a seeded-random member other than exclude. The
// caller must hold t.mu.
func (t *Tracker) randomMemberLocked(m map[int]string, exclude, channel int) (PeerInfo, bool) {
	ids := sortedMemberIDs(m, exclude)
	if len(ids) == 0 {
		return PeerInfo{}, false
	}
	id := ids[t.g.Intn(len(ids))]
	return PeerInfo{ID: id, Addr: m[id], Channel: channel}, true
}

// sortedMemberIDs returns m's keys minus exclude in ascending order. Go
// randomizes map iteration per run, so every selection the tracker makes
// from a member map must go through a sorted view to stay reproducible
// under one seed.
func sortedMemberIDs(m map[int]string, exclude int) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		if id != exclude {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}
