package emu

import "github.com/socialtube/socialtube/internal/trace"

// Scenario primitives: deterministic building blocks that figure
// harnesses and regression tests use to stage a cluster into a known
// state before driving requests by hand. The fault plan decides *when*
// providers die; these decide *what* exists when they do.

// Subscribe marks the peer as a subscriber of ch, so JoinChannel grants
// it channel-overlay membership like a trace subscription would.
func (p *Peer) Subscribe(ch trace.ChannelID) {
	p.mu.Lock()
	p.subs[ch] = true
	p.mu.Unlock()
}

// SeedCache marks v fully cached, making this peer a flood-findable
// provider without replaying a whole watch session.
func (p *Peer) SeedCache(v trace.VideoID) {
	p.mu.Lock()
	p.cache.AddFull(v)
	p.mu.Unlock()
}

// JoinChannel attaches the peer to ch's overlay via the tracker exactly
// as a request for one of ch's videos would.
func (p *Peer) JoinChannel(ch trace.ChannelID) {
	p.attachChannel(ch)
}

// AnnounceHave advertises v to the tracker (NetTube's have message), so
// the tracker can direct later first requests at this peer.
func (p *Peer) AnnounceHave(v trace.VideoID) {
	p.trackerRPC(p.chanKey(v), &Message{Type: MsgHave, From: p.cfg.ID, Addr: p.Addr(), Video: int(v)})
}

// StartWatching registers the peer as a current watcher of v (PA-VoD),
// making it a provider until FinishVideo or a crash.
func (p *Peer) StartWatching(v trace.VideoID) {
	p.mu.Lock()
	p.watching = v
	p.mu.Unlock()
	p.trackerRPC(p.chanKey(v), &Message{Type: MsgWatchStart, From: p.cfg.ID, Addr: p.Addr(), Video: int(v)})
}

// SetOnChunk installs fn as the delivery observer: it is called once per
// chunk this peer receives while fetching (provider -1 is the server).
// Harnesses use it to key fault injection to download progress instead
// of wall clock, which keeps crash timing deterministic.
func (p *Peer) SetOnChunk(fn func(v trace.VideoID, chunk, provider int)) {
	p.mu.Lock()
	p.onChunk = fn
	p.mu.Unlock()
}
