package emu

import (
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/trace"
)

// directPeer builds a started peer with fast conditions for message-level
// handler tests.
func directPeer(t *testing.T, tr *trace.Trace, tk *Tracker, id int, mode Mode) *Peer {
	t.Helper()
	return startPeer(t, tr, tk, id, mode, fastConditions())
}

func TestHandleQueryAnswersFromCache(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	p := directPeer(t, tr, tk, 0, ModeSocialTube)
	v := tr.Videos[0].ID
	p.RequestVideo(v)
	p.FinishVideo(v)

	resp, err := rpc(p.Addr(), &Message{
		Type: MsgQuery, From: 99, Video: int(v), TTL: 1, Visited: []int{99},
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgOK || resp.Provider != 0 || resp.ProviderAddr != p.Addr() {
		t.Fatalf("query hit malformed: %+v", resp)
	}
	if resp.Hops != 1 {
		t.Fatalf("hops = %d, want 1", resp.Hops)
	}
}

func TestHandleQueryMissWithTTL1DoesNotForward(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	p := directPeer(t, tr, tk, 0, ModeSocialTube)
	resp, err := rpc(p.Addr(), &Message{
		Type: MsgQuery, From: 99, Video: int(tr.Videos[0].ID), TTL: 1, Visited: []int{99},
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgMiss {
		t.Fatalf("type = %v, want miss", resp.Type)
	}
	if resp.Messages != 0 {
		t.Fatalf("TTL-1 miss forwarded %d messages, want 0", resp.Messages)
	}
}

func TestHandleQueryForwardsWithinTTL(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	v := tr.Videos[0].ID
	// c caches v; b links to c (video overlay); querying b with TTL 2
	// must forward to c and return the hit with hops 2.
	c := directPeer(t, tr, tk, 2, ModeNetTube)
	c.RequestVideo(v)
	c.FinishVideo(v)
	b := directPeer(t, tr, tk, 1, ModeNetTube)
	b.RequestVideo(tr.Videos[1].ID) // join some overlay state
	b.FinishVideo(tr.Videos[1].ID)
	// Link b into v's overlay so it has c as a neighbour.
	b.joinVideoOverlay(v, nil)
	if b.Links() == 0 {
		t.Skip("b could not link to c")
	}
	resp, err := rpc(b.Addr(), &Message{
		Type: MsgQuery, From: 99, Video: int(v), TTL: 2, Visited: []int{99},
	}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgOK {
		t.Fatalf("forwarded query missed: %+v", resp)
	}
	if resp.Provider != 2 {
		t.Fatalf("provider = %d, want 2", resp.Provider)
	}
	if resp.Hops != 2 {
		t.Fatalf("hops = %d, want 2", resp.Hops)
	}
}

func TestHandleQueryRespectsVisited(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	v := tr.Videos[0].ID
	c := directPeer(t, tr, tk, 2, ModeNetTube)
	c.RequestVideo(v)
	c.FinishVideo(v)
	b := directPeer(t, tr, tk, 1, ModeNetTube)
	b.joinVideoOverlay(v, nil)
	// Mark the provider as already visited: the forward must skip it.
	resp, err := rpc(b.Addr(), &Message{
		Type: MsgQuery, From: 99, Video: int(v), TTL: 2, Visited: []int{99, 2},
	}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgMiss {
		t.Fatalf("query revisited an excluded node: %+v", resp)
	}
}

func TestHandleConnectRespectsBudgets(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	cfg := DefaultPeerConfig(0, ModeSocialTube)
	cfg.InterLinks = 1
	p, err := NewPeer(cfg, tr, tk.Addr(), fastConditions())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)

	first, err := rpc(p.Addr(), &Message{
		Type: MsgConnect, From: 10, Addr: "127.0.0.1:1", Link: "inter",
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Accepted {
		t.Fatal("first inter connect rejected")
	}
	second, err := rpc(p.Addr(), &Message{
		Type: MsgConnect, From: 11, Addr: "127.0.0.1:2", Link: "inter",
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if second.Accepted {
		t.Fatal("inter connect beyond budget accepted")
	}
	// Duplicate connect from the same node is rejected too.
	dup, err := rpc(p.Addr(), &Message{
		Type: MsgConnect, From: 10, Addr: "127.0.0.1:1", Link: "inter",
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Accepted {
		t.Fatal("duplicate connect accepted")
	}
}

func TestHandleConnectVideoRequiresCachedCopy(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	p := directPeer(t, tr, tk, 0, ModeNetTube)
	v := tr.Videos[0].ID
	resp, err := rpc(p.Addr(), &Message{
		Type: MsgConnect, From: 10, Addr: "127.0.0.1:1", Link: "video", Video: int(v),
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted {
		t.Fatal("video-overlay connect accepted without a cached copy")
	}
	p.RequestVideo(v)
	p.FinishVideo(v)
	resp, err = rpc(p.Addr(), &Message{
		Type: MsgConnect, From: 10, Addr: "127.0.0.1:1", Link: "video", Video: int(v),
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted {
		t.Fatal("video-overlay connect rejected despite cached copy")
	}
}

func TestHandleUnknownMessageType(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	p := directPeer(t, tr, tk, 0, ModeSocialTube)
	// An unknown wire type is rejected without a response (the frame
	// never reaches dispatch) and counted.
	if _, err := rpc(p.Addr(), &Message{Type: "gibberish", From: 9}, 2*time.Second); err == nil {
		t.Fatal("unknown type was answered, want rejection")
	}
	if got := p.Counters().FramesRejected; got != 1 {
		t.Fatalf("FramesRejected = %d, want 1", got)
	}
	// The listener survives rejection: the next valid message works.
	resp, err := rpc(p.Addr(), &Message{Type: MsgProbe, From: 9}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgOK {
		t.Fatalf("probe after rejection answered %v, want ok", resp.Type)
	}
}

func TestChunkReqForPrefixOnlyFirstChunk(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	// A SocialTube peer with a subscribed channel prefetches prefixes.
	var node int = -1
	var ch *trace.Channel
	for _, u := range tr.Users {
		if int(u.ID) >= 64 {
			continue
		}
		for _, cid := range u.Subscriptions {
			if c := tr.Channel(cid); len(c.Videos) >= 4 {
				node, ch = int(u.ID), c
				break
			}
		}
		if ch != nil {
			break
		}
	}
	if ch == nil {
		t.Skip("no subscribed channel with enough videos")
	}
	p := directPeer(t, tr, tk, node, ModeSocialTube)
	watched := ch.Videos[3]
	p.RequestVideo(watched)
	p.FinishVideo(watched)
	top := ch.Videos[0]
	if top == watched {
		t.Skip("watched the top video")
	}
	// Chunk 0 of a prefix-cached video is servable; chunk 1 is not.
	resp, err := rpc(p.Addr(), &Message{Type: MsgChunkReq, From: 9, Video: int(top), Chunk: 0}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgOK {
		t.Fatalf("prefix chunk 0 not served: %v", resp.Type)
	}
	resp, err = rpc(p.Addr(), &Message{Type: MsgChunkReq, From: 9, Video: int(top), Chunk: 1}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgMiss {
		t.Fatalf("prefix-only peer served chunk 1: %v", resp.Type)
	}
}

func TestTrackerWatcherLifecycle(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	v := int(tr.Videos[0].ID)
	// First watcher: no provider.
	resp, err := rpc(tk.Addr(), &Message{Type: MsgWatchStart, From: 1, Addr: "127.0.0.1:1", Video: v}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Provider != -1 {
		t.Fatalf("first watcher got provider %d", resp.Provider)
	}
	// Second watcher is pointed at the first.
	resp, err = rpc(tk.Addr(), &Message{Type: MsgWatchStart, From: 2, Addr: "127.0.0.1:2", Video: v}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Provider != 1 {
		t.Fatalf("provider = %d, want 1", resp.Provider)
	}
	// First watcher leaves; a third watcher must not be pointed at it.
	if _, err := rpc(tk.Addr(), &Message{Type: MsgWatchDone, From: 1, Video: v}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err = rpc(tk.Addr(), &Message{Type: MsgWatchStart, From: 3, Addr: "127.0.0.1:3", Video: v}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Provider == 1 {
		t.Fatal("tracker pointed at a departed watcher")
	}
}

// TestGracefulLeaveNotifiesNeighbors: after LeaveOverlays, neighbours have
// dropped their links immediately — no probe round needed (§IV-A).
func TestGracefulLeaveNotifiesNeighbors(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	v := tr.Videos[0].ID
	pa := directPeer(t, tr, tk, 0, ModeNetTube)
	pa.RequestVideo(v)
	pa.FinishVideo(v)
	pb := directPeer(t, tr, tk, 1, ModeNetTube)
	pb.RequestVideo(v)
	pb.FinishVideo(v)
	if pa.Links() == 0 {
		t.Skip("peers did not link")
	}
	pb.LeaveOverlays()
	if pa.Links() != 0 {
		t.Fatalf("neighbour retains %d links after graceful leave", pa.Links())
	}
}

func TestTrackerStats(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	rpc(tk.Addr(), &Message{Type: MsgRegister, From: 1, Addr: "127.0.0.1:1"}, time.Second)
	rpc(tk.Addr(), &Message{Type: MsgServe, From: 1, Video: 0, Chunk: 0}, 2*time.Second)
	stats := tk.Stats()
	if stats[MsgRegister] != 1 || stats[MsgServe] != 1 {
		t.Fatalf("stats = %v", stats)
	}
	// The snapshot is a copy.
	stats[MsgServe] = 99
	if tk.Stats()[MsgServe] != 1 {
		t.Fatal("stats snapshot aliased internal state")
	}
}

func TestTrackerISPLocalizedWatchStart(t *testing.T) {
	tr := emuTrace(t)
	cfg := DefaultTrackerConfig()
	cfg.ISPs = 2
	tk, err := NewTracker(cfg, tr, fastConditions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tk.Stop)
	v := int(tr.Videos[0].ID)
	// Watcher 2 (ISP 0) starts; requester 3 (ISP 1) must NOT be
	// redirected to it, requester 4 (ISP 0) must.
	rpc(tk.Addr(), &Message{Type: MsgWatchStart, From: 2, Addr: "127.0.0.1:2", Video: v}, 2*time.Second)
	resp, err := rpc(tk.Addr(), &Message{Type: MsgWatchStart, From: 3, Addr: "127.0.0.1:3", Video: v}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Provider != -1 {
		t.Fatalf("cross-ISP requester got provider %d", resp.Provider)
	}
	resp, err = rpc(tk.Addr(), &Message{Type: MsgWatchStart, From: 4, Addr: "127.0.0.1:4", Video: v}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Provider != 2 {
		t.Fatalf("same-ISP requester got provider %d, want 2", resp.Provider)
	}
}

func TestCacheSampleRPC(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	p := directPeer(t, tr, tk, 0, ModeNetTube)
	for i := 0; i < 4; i++ {
		v := tr.Videos[i].ID
		p.RequestVideo(v)
		p.FinishVideo(v)
	}
	resp, err := rpc(p.Addr(), &Message{Type: MsgCacheSample, From: 9, TTL: 2}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgOK || len(resp.Videos) != 2 {
		t.Fatalf("cache sample: %+v", resp)
	}
	// Every returned id is genuinely cached.
	p.mu.Lock()
	for _, raw := range resp.Videos {
		if !p.cache.HasFull(trace.VideoID(raw)) {
			p.mu.Unlock()
			t.Fatalf("sampled id %d not cached", raw)
		}
	}
	p.mu.Unlock()
	// TTL 0 returns the full cache.
	resp, err = rpc(p.Addr(), &Message{Type: MsgCacheSample, From: 9}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Videos) != 4 {
		t.Fatalf("full sample = %d ids, want 4", len(resp.Videos))
	}
}
