package load

import (
	"math"
	"testing"
	"time"
)

func collect(t *testing.T, p *Profile) []Arrival {
	t.Helper()
	g, err := NewGen(p)
	if err != nil {
		t.Fatal(err)
	}
	var out []Arrival
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	if !g.Done() {
		t.Fatal("generator not done after exhaustion")
	}
	return out
}

func TestSteadyRateMatchesTarget(t *testing.T) {
	p := &Profile{Mode: Steady, Seed: 7, RPS: 50, Duration: 200 * time.Second}
	arr := collect(t, p)
	want := 50.0 * 200
	got := float64(len(arr))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("steady 50 rps x 200s: got %v arrivals, want ~%v", got, want)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatalf("arrivals out of order at %d: %v < %v", i, arr[i].At, arr[i-1].At)
		}
	}
}

func TestRampFrontBackHalves(t *testing.T) {
	p := &Profile{Mode: Ramp, Seed: 3, RPS: 10, EndRPS: 90, Duration: 400 * time.Second}
	arr := collect(t, p)
	half := p.Duration / 2
	var front, back int
	for _, a := range arr {
		if a.At < half {
			front++
		} else {
			back++
		}
	}
	// Linear 10→90 rps: first half averages 30 rps, second 70 rps.
	if front >= back {
		t.Fatalf("ramp should back-load arrivals: front %d, back %d", front, back)
	}
	ratio := float64(back) / float64(front)
	if ratio < 1.8 || ratio > 3.2 {
		t.Fatalf("ramp back/front ratio %v, want ~7/3", ratio)
	}
}

func TestSweepPlateaus(t *testing.T) {
	p := &Profile{Mode: Sweep, Seed: 9, RPS: 20, EndRPS: 80, Steps: 4, Duration: 400 * time.Second}
	// Plateau rates: 20, 40, 60, 80 over 100 s each.
	arr := collect(t, p)
	counts := make([]int, 4)
	for _, a := range arr {
		idx := int(a.At / (100 * time.Second))
		if idx > 3 {
			idx = 3
		}
		counts[idx]++
	}
	wants := []float64{2000, 4000, 6000, 8000}
	for i, w := range wants {
		if math.Abs(float64(counts[i])-w)/w > 0.1 {
			t.Fatalf("sweep plateau %d: got %d arrivals, want ~%v", i, counts[i], w)
		}
	}
}

func TestBurstWindow(t *testing.T) {
	p := &Profile{Mode: Burst, Seed: 5, RPS: 10, BurstRPS: 100,
		BurstAt: 100 * time.Second, BurstFor: 50 * time.Second, Duration: 300 * time.Second}
	arr := collect(t, p)
	var in, out int
	for _, a := range arr {
		if a.At >= p.BurstAt && a.At < p.BurstAt+p.BurstFor {
			in++
		} else {
			out++
		}
	}
	// 100 rps x 50s inside, 10 rps x 250s outside.
	if math.Abs(float64(in)-5000)/5000 > 0.1 || math.Abs(float64(out)-2500)/2500 > 0.1 {
		t.Fatalf("burst split in=%d out=%d, want ~5000/~2500", in, out)
	}
}

func TestDiurnalOscillates(t *testing.T) {
	p := &Profile{Mode: Diurnal, Seed: 11, RPS: 40, Swing: 0.8,
		Period: 200 * time.Second, Duration: 200 * time.Second}
	arr := collect(t, p)
	// sin > 0 over the first half period, < 0 over the second.
	var crest, trough int
	for _, a := range arr {
		if a.At < 100*time.Second {
			crest++
		} else {
			trough++
		}
	}
	if crest <= trough {
		t.Fatalf("diurnal crest %d should exceed trough %d", crest, trough)
	}
}

func TestFlashCrowdAttribution(t *testing.T) {
	p := &Profile{Mode: Steady, Seed: 13, RPS: 50, Duration: 300 * time.Second,
		Flash: &FlashCrowd{Channel: 2, At: 100 * time.Second, For: 100 * time.Second}}
	arr := collect(t, p)
	var flash int
	for _, a := range arr {
		if !a.Flash {
			continue
		}
		flash++
		if a.At < 100*time.Second || a.At >= 200*time.Second {
			t.Fatalf("flash arrival at %v outside the flash window", a.At)
		}
	}
	// Defaults: share 1%, multiplier 100 ⇒ flash rate ≈ 0.99·base ≈
	// 49.5 rps over 100 s.
	want := 50.0 * DefaultFlashShare * (DefaultFlashMultiplier - 1) * 100
	if math.Abs(float64(flash)-want)/want > 0.1 {
		t.Fatalf("flash arrivals %d, want ~%v", flash, want)
	}
}

func TestGenDeterminism(t *testing.T) {
	p := &Profile{Mode: Burst, Seed: 21, RPS: 30, BurstRPS: 90,
		BurstAt: 50 * time.Second, BurstFor: 20 * time.Second, Duration: 200 * time.Second,
		Flash: &FlashCrowd{Channel: 0, At: 10 * time.Second, For: 30 * time.Second}}
	a := collect(t, p)
	b := collect(t, p)
	if len(a) != len(b) {
		t.Fatalf("rerun length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rerun diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSplitConservesRate(t *testing.T) {
	p := &Profile{Mode: Steady, Seed: 17, RPS: 80, Duration: 200 * time.Second,
		Flash: &FlashCrowd{Channel: 4, At: 50 * time.Second, For: 50 * time.Second}}
	// Three cells of 500/300/200 users; flash channel homes in cell 1.
	users := []int{500, 300, 200}
	var total, flash int
	for c, u := range users {
		cp := p.Split(c, u, 1000, c == 1)
		if cp.Seed == p.Seed {
			t.Fatalf("cell %d kept the global seed", c)
		}
		arr := collect(t, cp)
		total += len(arr)
		for _, a := range arr {
			if a.Flash {
				flash++
				if c != 1 {
					t.Fatalf("flash arrival in non-home cell %d", c)
				}
			}
		}
	}
	global := collect(t, p)
	if math.Abs(float64(total)-float64(len(global)))/float64(len(global)) > 0.1 {
		t.Fatalf("split cells offered %d arrivals, global profile %d", total, len(global))
	}
	wantFlash := 80.0 * DefaultFlashShare * (DefaultFlashMultiplier - 1) * 50
	if math.Abs(float64(flash)-wantFlash)/wantFlash > 0.15 {
		t.Fatalf("split flash arrivals %d, want ~%v (full global intensity in home cell)", flash, wantFlash)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []*Profile{
		{Mode: Steady, RPS: 0, Duration: time.Second},
		{Mode: Steady, RPS: 5, Duration: 0},
		{Mode: "squarewave", RPS: 5, Duration: time.Second},
		{Mode: Sweep, RPS: 5, EndRPS: 10, Steps: 1, Duration: time.Second},
		{Mode: Burst, RPS: 5, BurstRPS: 0, BurstFor: time.Second, Duration: 2 * time.Second},
		{Mode: Burst, RPS: 5, BurstRPS: 10, BurstFor: time.Second, BurstAt: 3 * time.Second, Duration: 2 * time.Second},
		{Mode: Diurnal, RPS: 5, Period: 0, Duration: time.Second},
		{Mode: Diurnal, RPS: 5, Period: time.Second, Swing: 1.5, Duration: time.Second},
		{Mode: Steady, RPS: 5, Duration: time.Second, Flash: &FlashCrowd{Channel: -1, For: time.Second}},
		{Mode: Steady, RPS: 5, Duration: time.Second, Flash: &FlashCrowd{Multiplier: 0.5, For: time.Second}},
		{Mode: Steady, RPS: 5, Duration: time.Second, Flash: &FlashCrowd{Share: 2, For: time.Second}},
		{Mode: Steady, RPS: 5, Duration: time.Second, Flash: &FlashCrowd{For: 0}},
		{Mode: Steady, RPS: 5, Duration: time.Second, Flash: &FlashCrowd{For: time.Second, At: 2 * time.Second}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d validated but should not have: %+v", i, p)
		}
	}
	good := &Profile{Mode: Diurnal, RPS: 5, Period: time.Minute, Swing: 0.5, Duration: time.Minute}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
}
