// Package load turns the static trace into open-loop offered traffic.
//
// The closed-loop experiment runner replays session arrivals from the
// trace: a user only issues its next request once the previous one
// finished, so the offered rate silently tracks the system's service
// rate and overload can never be observed. This package generates a
// *rate-shaped* arrival stream instead — requests per second as a
// function of simulated time, independent of completions — in the
// spirit of the invitro trace synthesizer's normal / RPS-sweep / burst
// modes, plus a diurnal wave and a viral-video flash crowd.
//
// Arrivals are drawn from a nonhomogeneous Poisson process via
// thinning: candidate interarrivals are exponential at the profile's
// peak rate and each candidate at time t is accepted with probability
// rate(t)/peak. One seeded RNG drives the whole stream in time order,
// so the sequence is deterministic for a given Profile — the property
// the sharded runner relies on for byte-identical results across
// worker counts.
package load

import (
	"fmt"
	"math"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
)

// Mode selects the shape of the offered-rate curve.
type Mode string

const (
	// Steady offers a constant RPS for the whole duration.
	Steady Mode = "steady"
	// Ramp grows linearly from RPS to EndRPS over the duration.
	Ramp Mode = "ramp"
	// Sweep steps from RPS to EndRPS in Steps flat plateaus.
	Sweep Mode = "sweep"
	// Burst offers RPS except for a [BurstAt, BurstAt+BurstFor)
	// window at BurstRPS.
	Burst Mode = "burst"
	// Diurnal modulates RPS with a sine wave: RPS·(1+Swing·sin(2πt/Period)).
	Diurnal Mode = "diurnal"
)

// FlashCrowd slams one channel with a sudden demand spike: during
// [At, At+For) an extra Share·(Multiplier−1)·rate(t) arrivals per
// second all request the channel's most popular video. With the
// defaults (Share 1%, Multiplier 100) the flash window roughly doubles
// total traffic while multiplying that one video's demand ~100×.
type FlashCrowd struct {
	// Channel is the channel whose top-ranked video goes viral.
	Channel int `json:"channel"`
	// At is when the flash crowd starts, relative to run start.
	At time.Duration `json:"at"`
	// For is how long the flash crowd lasts.
	For time.Duration `json:"for"`
	// Multiplier scales the viral video's baseline demand share
	// (which is Share of all traffic). Must be > 1; 0 means the
	// default of 100.
	Multiplier float64 `json:"multiplier,omitempty"`
	// Share is the fraction of baseline traffic the video would
	// organically attract, in (0, 1]. 0 means the default of 0.01.
	Share float64 `json:"share,omitempty"`
}

// Default flash-crowd parameters, applied when the corresponding
// FlashCrowd field is zero.
const (
	DefaultFlashMultiplier = 100.0
	DefaultFlashShare      = 0.01
)

// Profile describes an open-loop offered-load curve. RPS fields are
// requests per second of simulated time.
type Profile struct {
	Mode Mode  `json:"mode"`
	Seed int64 `json:"seed"`

	// RPS is the base offered rate (start rate for ramp/sweep).
	RPS float64 `json:"rps"`
	// EndRPS is the final rate for ramp and sweep modes.
	EndRPS float64 `json:"endRPS,omitempty"`
	// Steps is the number of plateaus for sweep mode (≥ 2).
	Steps int `json:"steps,omitempty"`

	// Duration bounds the stream: no arrivals at t ≥ Duration.
	Duration time.Duration `json:"duration"`

	// Burst-mode window.
	BurstRPS float64       `json:"burstRPS,omitempty"`
	BurstAt  time.Duration `json:"burstAt,omitempty"`
	BurstFor time.Duration `json:"burstFor,omitempty"`

	// Diurnal-mode wave.
	Period time.Duration `json:"period,omitempty"`
	Swing  float64       `json:"swing,omitempty"`

	// Flash, if set, adds a flash crowd on top of the base curve.
	Flash *FlashCrowd `json:"flash,omitempty"`
}

// Validate checks the profile for internal consistency.
func (p *Profile) Validate() error {
	if p.Duration <= 0 {
		return fmt.Errorf("load: %w: duration %v must be positive", dist.ErrBadParameter, p.Duration)
	}
	if p.RPS <= 0 {
		return fmt.Errorf("load: %w: rps %v must be positive", dist.ErrBadParameter, p.RPS)
	}
	switch p.Mode {
	case Steady:
	case Ramp:
		if p.EndRPS < 0 {
			return fmt.Errorf("load: %w: ramp endRPS %v must be >= 0", dist.ErrBadParameter, p.EndRPS)
		}
	case Sweep:
		if p.Steps < 2 {
			return fmt.Errorf("load: %w: sweep needs steps >= 2, got %d", dist.ErrBadParameter, p.Steps)
		}
		if p.EndRPS < 0 {
			return fmt.Errorf("load: %w: sweep endRPS %v must be >= 0", dist.ErrBadParameter, p.EndRPS)
		}
	case Burst:
		if p.BurstRPS <= 0 {
			return fmt.Errorf("load: %w: burstRPS %v must be positive", dist.ErrBadParameter, p.BurstRPS)
		}
		if p.BurstFor <= 0 {
			return fmt.Errorf("load: %w: burstFor %v must be positive", dist.ErrBadParameter, p.BurstFor)
		}
		if p.BurstAt < 0 || p.BurstAt >= p.Duration {
			return fmt.Errorf("load: %w: burstAt %v outside [0, %v)", dist.ErrBadParameter, p.BurstAt, p.Duration)
		}
	case Diurnal:
		if p.Period <= 0 {
			return fmt.Errorf("load: %w: diurnal period %v must be positive", dist.ErrBadParameter, p.Period)
		}
		if p.Swing < 0 || p.Swing >= 1 {
			return fmt.Errorf("load: %w: diurnal swing %v outside [0, 1)", dist.ErrBadParameter, p.Swing)
		}
	default:
		return fmt.Errorf("load: %w: unknown mode %q", dist.ErrBadParameter, p.Mode)
	}
	if f := p.Flash; f != nil {
		if f.Channel < 0 {
			return fmt.Errorf("load: %w: flash channel %d must be >= 0", dist.ErrBadParameter, f.Channel)
		}
		if f.Multiplier != 0 && f.Multiplier <= 1 {
			return fmt.Errorf("load: %w: flash multiplier %v must be > 1", dist.ErrBadParameter, f.Multiplier)
		}
		if f.Share < 0 || f.Share > 1 {
			return fmt.Errorf("load: %w: flash share %v outside [0, 1]", dist.ErrBadParameter, f.Share)
		}
		if f.For <= 0 {
			return fmt.Errorf("load: %w: flash window %v must be positive", dist.ErrBadParameter, f.For)
		}
		if f.At < 0 || f.At >= p.Duration {
			return fmt.Errorf("load: %w: flash start %v outside [0, %v)", dist.ErrBadParameter, f.At, p.Duration)
		}
	}
	return nil
}

// Rate returns the base offered rate at time t (flash excluded).
func (p *Profile) Rate(t time.Duration) float64 {
	if t < 0 || t >= p.Duration {
		return 0
	}
	switch p.Mode {
	case Ramp:
		frac := float64(t) / float64(p.Duration)
		return p.RPS + (p.EndRPS-p.RPS)*frac
	case Sweep:
		step := int(float64(t) / float64(p.Duration) * float64(p.Steps))
		if step >= p.Steps {
			step = p.Steps - 1
		}
		return p.RPS + (p.EndRPS-p.RPS)*float64(step)/float64(p.Steps-1)
	case Burst:
		if t >= p.BurstAt && t < p.BurstAt+p.BurstFor {
			return p.BurstRPS
		}
		return p.RPS
	case Diurnal:
		return p.RPS * (1 + p.Swing*math.Sin(2*math.Pi*float64(t)/float64(p.Period)))
	default: // Steady
		return p.RPS
	}
}

// flashRate returns the extra arrivals/s the flash crowd adds at t.
func (p *Profile) flashRate(t time.Duration) float64 {
	f := p.Flash
	if f == nil || t < f.At || t >= f.At+f.For {
		return 0
	}
	mult := f.Multiplier
	if mult == 0 {
		mult = DefaultFlashMultiplier
	}
	share := f.Share
	if share == 0 {
		share = DefaultFlashShare
	}
	return p.Rate(t) * share * (mult - 1)
}

// Peak returns an upper bound on the total instantaneous rate (base +
// flash), used as the thinning envelope.
func (p *Profile) Peak() float64 {
	base := p.RPS
	switch p.Mode {
	case Ramp, Sweep:
		base = math.Max(p.RPS, p.EndRPS)
	case Burst:
		base = math.Max(p.RPS, p.BurstRPS)
	case Diurnal:
		base = p.RPS * (1 + p.Swing)
	}
	if f := p.Flash; f != nil {
		mult := f.Multiplier
		if mult == 0 {
			mult = DefaultFlashMultiplier
		}
		share := f.Share
		if share == 0 {
			share = DefaultFlashShare
		}
		base *= 1 + share*(mult-1)
	}
	return base
}

// Split scales the profile down to one community cell of a sharded
// run: the cell with `users` of `total` users offers that fraction of
// the base rate, under a seed derived from the cell index so every
// cell draws an independent deterministic stream. The flash crowd only
// fires in the cell that homes the viral channel (hasFlash), where its
// multiplier is rescaled so the crowd keeps its full global intensity
// even though the cell's base rate shrank.
func (p *Profile) Split(cell, users, total int, hasFlash bool) *Profile {
	c := *p
	frac := 0.0
	if total > 0 {
		frac = float64(users) / float64(total)
	}
	c.RPS *= frac
	c.EndRPS *= frac
	c.BurstRPS *= frac
	c.Seed = p.Seed*1_000_003 + int64(cell+1)
	c.Flash = nil
	if f := p.Flash; f != nil && hasFlash && frac > 0 {
		fc := *f
		mult := fc.Multiplier
		if mult == 0 {
			mult = DefaultFlashMultiplier
		}
		// The cell's base rate is frac·global, so scaling the
		// multiplier surplus by 1/frac keeps the absolute flash
		// rate equal to the global profile's.
		fc.Multiplier = 1 + (mult-1)/frac
		c.Flash = &fc
	}
	return &c
}

// Arrival is one open-loop request arrival.
type Arrival struct {
	// At is the arrival time relative to the stream's start.
	At time.Duration
	// Flash marks arrivals belonging to the flash crowd: they
	// request the viral video instead of a trace-sampled session.
	Flash bool
}

// Gen produces the profile's arrival stream in time order.
type Gen struct {
	p    Profile
	g    *dist.RNG
	peak float64
	now  time.Duration
	done bool
}

// NewGen validates the profile and returns its arrival generator.
func NewGen(p *Profile) (*Gen, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Gen{
		p:    *p,
		g:    dist.NewRNG(p.Seed),
		peak: p.Peak(),
	}, nil
}

// Next returns the next arrival, or ok=false once the stream is past
// the profile's duration.
func (g *Gen) Next() (Arrival, bool) {
	if g.done {
		return Arrival{}, false
	}
	meanGap := float64(time.Second) / g.peak
	for {
		g.now += time.Duration(dist.Exponential(g.g, meanGap))
		if g.now >= g.p.Duration {
			g.done = true
			return Arrival{}, false
		}
		base := g.p.Rate(g.now)
		flash := g.p.flashRate(g.now)
		total := base + flash
		if total <= 0 {
			continue
		}
		// Thinning: accept with probability rate/peak, then
		// attribute the accepted arrival to the flash crowd in
		// proportion to its share of the instantaneous rate.
		u := g.g.Float64() * g.peak
		if u >= total {
			continue
		}
		return Arrival{At: g.now, Flash: u >= base}, true
	}
}

// Done reports whether the stream is exhausted.
func (g *Gen) Done() bool { return g.done }
