package ctrl

import (
	"sort"
	"sync"
)

// Beat is one replica's heartbeat on the wire: a flat endpoint key
// (shard<<8 | replica) and a beat counter that only its owner advances.
// Beats merge by max, so they gossip transitively: a replica that cannot
// reach shard S directly still sees S's beats advance through any common
// gossip partner.
type Beat struct {
	Key int   `json:"key"`
	Ver int64 `json:"ver"`
}

// ShardStatus is a replicated shard-liveness verdict: Dead plus an LWW
// version stamped like MemberTable entries (status clock in the high
// bits, declaring endpoint in the low 8), so a later revival always
// supersedes an earlier death and merges commute.
type ShardStatus struct {
	Shard int    `json:"shard"`
	Dead  bool   `json:"dead,omitempty"`
	Ver   uint64 `json:"ver"`
}

// Liveness is one tracker replica's failure detector over the plane.
// Suspicion is counted in the replica's own gossip rounds — a shard whose
// beats all stop advancing for suspicionRounds consecutive local rounds
// is declared dead — so detection latency is seed- and
// schedule-deterministic (rounds, not wall-clock) and a paused plane
// never falsely expires anyone. Declarations and revivals are ShardStatus
// records gossiped plane-wide; every status transition (local or adopted
// from a merge) bumps a monotone ring epoch that rides on tracker RPC
// responses so peers can invalidate their routing view exactly when the
// live shard set changes.
type Liveness struct {
	mu        sync.Mutex
	node      uint64 // flat endpoint index, masked to 8 bits for stamps
	shards    int
	shard     int // own shard: never self-declared dead
	self      int // own beat key
	suspicion int64

	round  int64 // local gossip rounds; drives suspicion only
	sclock uint64
	beats  map[int]int64
	seen   map[int]int64 // beat key -> local round its beat last advanced
	status map[int]ShardStatus
	epoch  uint64
}

// NewLiveness builds the detector for replica (shard, replica) of a
// shards-wide plane. suspicionRounds is how many of this replica's own
// gossip rounds a shard's beats must all stay frozen before it is
// declared dead; values < 1 fall back to 1. Only the first 64 shards can
// be declared (the dead set is a uint64 bitmask on the wire); planes are
// validated to that bound where the detector is wired up.
func NewLiveness(shards, shard, replica, suspicionRounds int) *Liveness {
	if suspicionRounds < 1 {
		suspicionRounds = 1
	}
	self := shard<<8 | replica
	return &Liveness{
		node:      uint64(self) & 0xFF,
		shards:    shards,
		shard:     shard,
		self:      self,
		suspicion: int64(suspicionRounds),
		beats:     map[int]int64{self: 0},
		seen:      map[int]int64{self: 0},
		status:    make(map[int]ShardStatus),
	}
}

func (l *Liveness) tickLocked() uint64 {
	l.sclock++
	return l.sclock<<8 | l.node
}

// Tick advances one local gossip round: bumps the replica's own beat and
// runs the suspicion check. A remote shard every one of whose known beats
// has been frozen for suspicion rounds is declared dead; the returned
// slice names the shards this call transitioned to dead (for counters and
// takeover timestamps). A shard no beat has ever been seen from is
// suspected from round zero — a shard dark since startup must still be
// declared, not waited on forever.
func (l *Liveness) Tick() (died []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.round++
	l.beats[l.self]++
	l.seen[l.self] = l.round
	if l.round < l.suspicion {
		return nil
	}
	for s := 0; s < l.shards; s++ {
		if s == l.shard || s >= 64 {
			continue
		}
		if st, ok := l.status[s]; ok && st.Dead {
			continue
		}
		stale := true
		for key, at := range l.seen {
			if key>>8 == s && l.round-at < l.suspicion {
				stale = false
				break
			}
		}
		if stale {
			l.status[s] = ShardStatus{Shard: s, Dead: true, Ver: l.tickLocked()}
			l.epoch++
			died = append(died, s)
		}
	}
	return died
}

// MergeBeats folds a partner's beat snapshot in (max wins) and returns
// the shards this call revived: a dead-declared shard whose beat advanced
// is alive again, stamped with a fresh status version so the revival
// outranks the earlier death everywhere it gossips to.
func (l *Liveness) MergeBeats(bs []Beat) (revived []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, b := range bs {
		if b.Key < 0 || b.Ver <= l.beats[b.Key] {
			continue
		}
		l.beats[b.Key] = b.Ver
		l.seen[b.Key] = l.round
		s := b.Key >> 8
		if st, ok := l.status[s]; ok && st.Dead {
			l.status[s] = ShardStatus{Shard: s, Ver: l.tickLocked()}
			l.epoch++
			revived = append(revived, s)
		}
	}
	return revived
}

// MergeStatus folds a partner's status records in, strictly-newer-wins,
// and returns the dead/alive transitions it adopted. The status clock
// advances past every merged version so this replica's next declaration
// supersedes everything it has seen. The epoch merges by max on top of
// the per-transition bumps; both sides of any exchange converge to the
// same (status, epoch) regardless of order.
func (l *Liveness) MergeStatus(ss []ShardStatus, remoteEpoch uint64) (died, revived []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range ss {
		if r.Shard < 0 || r.Shard >= l.shards {
			continue
		}
		if c := r.Ver >> 8; c > l.sclock {
			l.sclock = c
		}
		cur, ok := l.status[r.Shard]
		if ok && cur.Ver >= r.Ver {
			continue
		}
		// Never adopt a death verdict about our own shard: we are alive
		// to say so, and our next Tick's beat will revive us anyway —
		// skipping the flap keeps the epoch from churning.
		if r.Dead && r.Shard == l.shard {
			continue
		}
		l.status[r.Shard] = r
		if r.Dead != cur.Dead {
			l.epoch++
			if r.Dead {
				died = append(died, r.Shard)
			} else {
				revived = append(revived, r.Shard)
			}
		}
	}
	if remoteEpoch > l.epoch {
		l.epoch = remoteEpoch
	}
	return died, revived
}

// Beats returns every known beat sorted by key — the wire form.
func (l *Liveness) Beats() []Beat {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Beat, 0, len(l.beats))
	for k, v := range l.beats {
		out = append(out, Beat{Key: k, Ver: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Status returns every shard-status record sorted by shard — the wire
// form. Shards never declared have no record.
func (l *Liveness) Status() []ShardStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]ShardStatus, 0, len(l.status))
	for _, st := range l.status {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// Epoch returns the ring epoch: 0 until the first status transition,
// monotone thereafter. Peers discard a routing view whenever a response
// carries a strictly larger epoch.
func (l *Liveness) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// DeadMask returns the dead shards as a bitmask (bit s = shard s dead),
// the form Ring.OwnerExcluding consumes and tracker responses carry.
func (l *Liveness) DeadMask() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var mask uint64
	for s, st := range l.status {
		if st.Dead && s < 64 {
			mask |= 1 << uint(s)
		}
	}
	return mask
}
