package ctrl

import (
	"sort"
	"sync"
)

// Entry is one membership fact: peer id -> listen address, stamped with a
// version and a liveness bit. Departures are tombstones (Dead=true) rather
// than deletions, so a replica that missed the leave learns about it from
// gossip instead of resurrecting the peer.
type Entry struct {
	Addr string
	Ver  uint64
	Dead bool
}

// SyncRecord is one table row on the wire: (key, id) plus the entry. Keys
// are the table's partition keys (channel ids, video ids); ids are peer
// ids.
type SyncRecord struct {
	Key  int64  `json:"key"`
	ID   int    `json:"id"`
	Addr string `json:"addr,omitempty"`
	Ver  uint64 `json:"ver"`
	Dead bool   `json:"dead,omitempty"`
}

// TableSync is a named table snapshot exchanged by anti-entropy gossip.
type TableSync struct {
	Table string       `json:"table"`
	Recs  []SyncRecord `json:"recs,omitempty"`
}

// MemberTable is a replicated membership map: key -> peer id -> Entry.
// Writes stamp entries with a version combining a table-local logical
// clock (high bits) and the owning replica's node id (low 8 bits), so
// concurrent writes at different replicas order deterministically and
// last-writer-wins merge is commutative, associative and idempotent —
// two replicas that exchange snapshots in any order converge to the same
// table.
type MemberTable struct {
	mu    sync.Mutex
	node  uint64 // replica id in [0, 256)
	clock uint64
	m     map[int64]map[int]Entry
}

// NewMemberTable builds an empty table owned by replica node (masked to
// 8 bits).
func NewMemberTable(node int) *MemberTable {
	return &MemberTable{
		node: uint64(node) & 0xFF,
		m:    make(map[int64]map[int]Entry),
	}
}

// SetNode re-stamps the table's owning replica id (masked to 8 bits).
// Call it before the first write: versions already issued keep their old
// node bits.
func (t *MemberTable) SetNode(node int) {
	t.mu.Lock()
	t.node = uint64(node) & 0xFF
	t.mu.Unlock()
}

func (t *MemberTable) tick() uint64 {
	t.clock++
	return t.clock<<8 | t.node
}

// Put records id as a live member under key.
func (t *MemberTable) Put(key int64, id int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.putLocked(key, id, addr)
}

func (t *MemberTable) putLocked(key int64, id int, addr string) {
	row := t.m[key]
	if row == nil {
		row = make(map[int]Entry)
		t.m[key] = row
	}
	row[id] = Entry{Addr: addr, Ver: t.tick()}
}

// PutExclusive records id as a live member under key and tombstones id
// under every other key of this table — exclusive membership, for state
// like a SocialTube peer's home channel where a peer belongs to exactly
// one overlay at a time.
func (t *MemberTable) PutExclusive(key int64, id int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, row := range t.m {
		if k == key {
			continue
		}
		if e, ok := row[id]; ok && !e.Dead {
			row[id] = Entry{Ver: t.tick(), Dead: true}
		}
	}
	t.putLocked(key, id, addr)
}

// Remove tombstones id under key (no-op if absent or already dead).
func (t *MemberTable) Remove(key int64, id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if row, ok := t.m[key]; ok {
		if e, ok := row[id]; ok && !e.Dead {
			row[id] = Entry{Ver: t.tick(), Dead: true}
		}
	}
}

// RemoveEverywhere tombstones id under every key — a leave or crash
// departure.
func (t *MemberTable) RemoveEverywhere(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, row := range t.m {
		if e, ok := row[id]; ok && !e.Dead {
			row[id] = Entry{Ver: t.tick(), Dead: true}
		}
	}
}

// Live returns the live members under key as a fresh id -> addr map. The
// copy means callers can iterate (through a sorted view) exactly as they
// would over a plain map, and a concurrent gossip merge never mutates a
// map mid-selection.
func (t *MemberTable) Live(key int64) map[int]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.m[key]
	if len(row) == 0 {
		return nil
	}
	out := make(map[int]string, len(row))
	for id, e := range row {
		if !e.Dead {
			out[id] = e.Addr
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// LiveCount returns the number of live entries across all keys.
func (t *MemberTable) LiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, row := range t.m {
		for _, e := range row {
			if !e.Dead {
				n++
			}
		}
	}
	return n
}

// Snapshot returns every row (tombstones included) sorted by (key, id) —
// the deterministic wire form gossip exchanges.
func (t *MemberTable) Snapshot() []SyncRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, row := range t.m {
		n += len(row)
	}
	recs := make([]SyncRecord, 0, n)
	for key, row := range t.m {
		for id, e := range row {
			recs = append(recs, SyncRecord{Key: key, ID: id, Addr: e.Addr, Ver: e.Ver, Dead: e.Dead})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].ID < recs[j].ID
	})
	return recs
}

// CompactTombstones deletes tombstones whose logical clock is more than
// horizon ticks behind the table's current clock, and returns how many it
// dropped. Convergence safety: every merge advances the local clock past
// every received version, so two gossiping replicas' clocks stay within
// one round of writes of each other; a tombstone horizon ticks old has
// therefore survived on the order of horizon/writes-per-round gossip
// rounds and been merged everywhere. Dropping it can only resurrect the
// member if some replica still holds the pre-tombstone live entry, which
// a generous horizon (the callers use thousands of ticks against
// per-round divergence of at most a few hundred writes) makes impossible
// in any schedule the emulator can produce. The horizon is compared on
// clock ticks, not wall time, so GC is as deterministic as the write
// schedule that fed the table.
func (t *MemberTable) CompactTombstones(horizon uint64) (dropped int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.clock <= horizon {
		return 0
	}
	cut := t.clock - horizon
	for key, row := range t.m {
		for id, e := range row {
			if e.Dead && e.Ver>>8 < cut {
				delete(row, id)
				dropped++
			}
		}
		if len(row) == 0 {
			delete(t.m, key)
		}
	}
	return dropped
}

// Size returns the total number of stored rows, tombstones included —
// the quantity tombstone GC bounds.
func (t *MemberTable) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, row := range t.m {
		n += len(row)
	}
	return n
}

// Merge folds a snapshot in: a record wins iff its version is strictly
// newer than the local one. The local clock advances past every merged
// version so subsequent local writes supersede merged state.
func (t *MemberTable) Merge(recs []SyncRecord) (applied int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range recs {
		if c := r.Ver >> 8; c > t.clock {
			t.clock = c
		}
		row := t.m[r.Key]
		if cur, ok := row[r.ID]; ok && cur.Ver >= r.Ver {
			continue
		}
		if row == nil {
			row = make(map[int]Entry)
			t.m[r.Key] = row
		}
		row[r.ID] = Entry{Addr: r.Addr, Ver: r.Ver, Dead: r.Dead}
		applied++
	}
	return applied
}
