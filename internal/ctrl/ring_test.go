package ctrl

import "testing"

// Every key maps to exactly one shard in [0, shards), and the mapping is
// a pure function of (seed, shards).
func TestRingOwnershipProperty(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8} {
		r, err := NewRing(42, shards)
		if err != nil {
			t.Fatalf("NewRing(42, %d): %v", shards, err)
		}
		r2, err := NewRing(42, shards)
		if err != nil {
			t.Fatalf("NewRing(42, %d): %v", shards, err)
		}
		for key := int64(0); key < 1000; key++ {
			s := r.Owner(key)
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d key=%d: owner %d out of range", shards, key, s)
			}
			if s2 := r.Owner(key); s2 != s {
				t.Fatalf("shards=%d key=%d: owner not stable: %d then %d", shards, key, s, s2)
			}
			if s2 := r2.Owner(key); s2 != s {
				t.Fatalf("shards=%d key=%d: owner differs across identical rings: %d vs %d", shards, key, s, s2)
			}
		}
	}
}

// The ring hashes channels to shard indices only — replicas are not ring
// members — so adding a replica to a shard moves no keys at all.
func TestRingStableUnderReplicaAddition(t *testing.T) {
	before, err := NewDirectory(7, [][]string{{"a0"}, {"b0"}})
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewDirectory(7, [][]string{{"a0", "a1"}, {"b0", "b1", "b2"}})
	if err != nil {
		t.Fatal(err)
	}
	for key := int64(0); key < 1000; key++ {
		if before.Owner(key) != after.Owner(key) {
			t.Fatalf("key %d moved shard (%d -> %d) when only replicas were added",
				key, before.Owner(key), after.Owner(key))
		}
	}
}

// Rendezvous hashing should spread keys roughly evenly; with 1000 keys
// over 4 shards each shard should hold well within 2x of the fair share.
func TestRingRoughBalance(t *testing.T) {
	const shards, keys = 4, 1000
	r, err := NewRing(1, shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for key := int64(0); key < keys; key++ {
		counts[r.Owner(key)]++
	}
	for s, n := range counts {
		if n < keys/shards/2 || n > keys/shards*2 {
			t.Fatalf("shard %d holds %d of %d keys (counts %v) — badly unbalanced", s, n, keys, counts)
		}
	}
}

// Different seeds should produce different assignments (the ring is
// actually seeded, not a fixed hash).
func TestRingSeeded(t *testing.T) {
	a, _ := NewRing(1, 4)
	b, _ := NewRing(2, 4)
	diff := 0
	for key := int64(0); key < 1000; key++ {
		if a.Owner(key) != b.Owner(key) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical assignments for 1000 keys")
	}
}

func TestDirectoryValidation(t *testing.T) {
	if _, err := NewDirectory(1, nil); err == nil {
		t.Fatal("empty directory accepted")
	}
	if _, err := NewDirectory(1, [][]string{{"a"}, {}}); err == nil {
		t.Fatal("shard with no replicas accepted")
	}
	if _, err := NewDirectory(1, [][]string{{"a"}, {""}}); err == nil {
		t.Fatal("empty endpoint accepted")
	}
	d, err := NewDirectory(1, [][]string{{"a0", "a1"}, {"b0"}, {"c0", "c1", "c2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Endpoints(); got != 6 {
		t.Fatalf("Endpoints() = %d, want 6", got)
	}
	// Flat endpoint indices are stable and collision-free.
	seen := map[int]bool{}
	for s := 0; s < d.NumShards(); s++ {
		for rep := range d.Replicas(s) {
			idx := d.EndpointIndex(s, rep)
			if seen[idx] {
				t.Fatalf("EndpointIndex(%d,%d) = %d collides", s, rep, idx)
			}
			seen[idx] = true
			if idx < 0 || idx >= d.Endpoints() {
				t.Fatalf("EndpointIndex(%d,%d) = %d out of range", s, rep, idx)
			}
		}
	}
	if got := len(d.All()); got != 6 {
		t.Fatalf("All() returned %d endpoints, want 6", got)
	}
}

func TestGossiperSchedule(t *testing.T) {
	if g := NewGossiper(1, 0, 1); g != nil {
		t.Fatal("single-replica shard should have no gossiper")
	}
	g := NewGossiper(3, 1, 4)
	if g == nil {
		t.Fatal("nil gossiper for 4 replicas")
	}
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		p := g.Next()
		if p == 1 || p < 0 || p > 3 {
			t.Fatalf("gossiper for replica 1 yielded partner %d", p)
		}
		seen[p]++
	}
	// Round-robin over 3 siblings for 9 draws: each exactly 3 times.
	for _, sib := range []int{0, 2, 3} {
		if seen[sib] != 3 {
			t.Fatalf("sibling visit counts %v, want each of {0,2,3} exactly 3 times", seen)
		}
	}
	// Same seed, same schedule.
	g2 := NewGossiper(3, 1, 4)
	g3 := NewGossiper(3, 1, 4)
	for i := 0; i < 6; i++ {
		if a, b := g2.Next(), g3.Next(); a != b {
			t.Fatalf("draw %d: same-seed gossipers disagree (%d vs %d)", i, a, b)
		}
	}
}
