package ctrl

import (
	"reflect"
	"testing"
)

// Two replicas with divergent membership converge to identical tables
// within a bounded number of push-pull rounds (here: one round, since a
// round exchanges full snapshots; the bound K=3 leaves room for the
// tracker-level gossip which batches tables).
func TestGossipConvergence(t *testing.T) {
	a := NewMemberTable(0)
	b := NewMemberTable(1)

	// Divergent writes on both sides, including a departure only A saw.
	a.Put(10, 1, "p1")
	a.Put(10, 2, "p2")
	a.Put(11, 3, "p3")
	a.RemoveEverywhere(2)
	b.Put(10, 4, "p4")
	b.Put(12, 5, "p5")

	const K = 3
	converged := false
	for round := 0; round < K; round++ {
		// Push-pull: A merges B's snapshot, B merges A's.
		sa, sb := a.Snapshot(), b.Snapshot()
		a.Merge(sb)
		b.Merge(sa)
		if reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("tables did not converge within %d rounds:\nA: %+v\nB: %+v", K, a.Snapshot(), b.Snapshot())
	}
	// The departure propagated: peer 2 is dead everywhere.
	for _, tab := range []*MemberTable{a, b} {
		if m := tab.Live(10); m[2] != "" {
			t.Fatalf("tombstoned peer 2 resurrected: %v", m)
		}
		want := map[int]string{1: "p1", 4: "p4"}
		if got := tab.Live(10); !reflect.DeepEqual(got, want) {
			t.Fatalf("Live(10) = %v, want %v", got, want)
		}
		if got := tab.Live(12); !reflect.DeepEqual(got, map[int]string{5: "p5"}) {
			t.Fatalf("Live(12) = %v", got)
		}
	}
}

// Merge is idempotent and order-independent: applying snapshots in any
// order and any number of times yields the same table.
func TestMergeCommutes(t *testing.T) {
	build := func() (*MemberTable, *MemberTable) {
		a, b := NewMemberTable(0), NewMemberTable(1)
		a.Put(1, 1, "x")
		a.Remove(1, 1)
		a.Put(2, 7, "y")
		b.Put(1, 1, "z") // same (key,id), different replica
		b.Put(3, 9, "w")
		return a, b
	}

	a1, b1 := build()
	sa, sb := a1.Snapshot(), b1.Snapshot()
	a1.Merge(sb)
	a1.Merge(sb) // idempotent
	fwd := a1.Snapshot()

	a2, b2 := build()
	b2.Merge(sa)
	b2.Merge(a2.Snapshot())
	rev := b2.Snapshot()

	if !reflect.DeepEqual(fwd, rev) {
		t.Fatalf("merge order changed the table:\nfwd: %+v\nrev: %+v", fwd, rev)
	}
}

// A tombstone with a newer version beats a live entry, and a local write
// after a merge supersedes merged state (the clock advances past merged
// versions).
func TestTombstoneAndClockAdvance(t *testing.T) {
	a := NewMemberTable(0)
	b := NewMemberTable(1)
	a.Put(5, 1, "addr")
	b.Merge(a.Snapshot())
	if got := b.Live(5); got[1] != "addr" {
		t.Fatalf("merge lost live entry: %v", got)
	}
	// B sees the departure after merging; its clock must have advanced so
	// the tombstone versions above everything A wrote.
	b.Remove(5, 1)
	a.Merge(b.Snapshot())
	if got := a.Live(5); got != nil {
		t.Fatalf("tombstone did not win on A: %v", got)
	}
	// A re-registers the peer: the rejoin must beat the tombstone.
	a.Put(5, 1, "addr2")
	b.Merge(a.Snapshot())
	if got := b.Live(5); got[1] != "addr2" {
		t.Fatalf("rejoin lost to stale tombstone: %v", got)
	}
}

// PutExclusive moves a peer between keys atomically: live under the new
// key, tombstoned under every previous key.
func TestPutExclusive(t *testing.T) {
	tab := NewMemberTable(0)
	tab.PutExclusive(1, 42, "a")
	tab.PutExclusive(2, 42, "a")
	tab.PutExclusive(3, 42, "a")
	if got := tab.Live(1); got != nil {
		t.Fatalf("peer still live under old key 1: %v", got)
	}
	if got := tab.Live(2); got != nil {
		t.Fatalf("peer still live under old key 2: %v", got)
	}
	if got := tab.Live(3); got[42] != "a" {
		t.Fatalf("peer not live under current key 3: %v", got)
	}
	if n := tab.LiveCount(); n != 1 {
		t.Fatalf("LiveCount = %d, want 1", n)
	}
}

func TestSnapshotSorted(t *testing.T) {
	tab := NewMemberTable(0)
	tab.Put(9, 3, "c")
	tab.Put(1, 7, "a")
	tab.Put(9, 1, "b")
	tab.Put(1, 2, "d")
	recs := tab.Snapshot()
	for i := 1; i < len(recs); i++ {
		prev, cur := recs[i-1], recs[i]
		if prev.Key > cur.Key || (prev.Key == cur.Key && prev.ID >= cur.ID) {
			t.Fatalf("snapshot not sorted at %d: %+v then %+v", i, prev, cur)
		}
	}
}
