package ctrl

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// TestRingRemoveOneShardMovesOnlyItsKeys pins the rebalance property the
// takeover design leans on: excluding one shard from the ring moves
// exactly the keys that shard owned — every surviving shard keeps every
// key it already had (no shuffle among survivors).
func TestRingRemoveOneShardMovesOnlyItsKeys(t *testing.T) {
	for _, shards := range []int{2, 3, 5, 8} {
		r, err := NewRing(42, shards)
		if err != nil {
			t.Fatal(err)
		}
		for dead := 0; dead < shards && dead < 64; dead++ {
			mask := uint64(1) << uint(dead)
			moved := 0
			for key := int64(0); key < 2000; key++ {
				before := r.Owner(key)
				after := r.OwnerExcluding(key, mask)
				if after == dead {
					t.Fatalf("shards=%d dead=%d key=%d: reassigned to the dead shard", shards, dead, key)
				}
				if before != dead && after != before {
					t.Fatalf("shards=%d dead=%d key=%d: surviving key shuffled %d -> %d",
						shards, dead, key, before, after)
				}
				if before == dead {
					moved++
				}
			}
			if moved == 0 {
				t.Fatalf("shards=%d dead=%d: dead shard owned no keys, property vacuous", shards, dead)
			}
		}
	}
}

// TestRingReAddRestoresAssignmentExactly pins the inverse: clearing the
// dead mask restores the original assignment bit for bit, so a takeover
// followed by a revival routes every key exactly where it started.
func TestRingReAddRestoresAssignmentExactly(t *testing.T) {
	r, err := NewRing(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for key := int64(0); key < 2000; key++ {
		if got, want := r.OwnerExcluding(key, 0), r.Owner(key); got != want {
			t.Fatalf("key %d: empty mask diverges: %d != %d", key, got, want)
		}
	}
	// Through a kill-and-revive round trip the exclusion answer must be a
	// pure function of the mask — same mask, same owner.
	mask := uint64(1) << 2
	first := make([]int, 2000)
	for key := int64(0); key < 2000; key++ {
		first[key] = r.OwnerExcluding(key, mask)
	}
	for key := int64(0); key < 2000; key++ {
		if got := r.OwnerExcluding(key, mask); got != first[key] {
			t.Fatalf("key %d: exclusion owner not stable: %d != %d", key, got, first[key])
		}
	}
}

// TestRingOwnerExcludingDegenerateMasks: an all-dead or nonsense mask
// falls back to the healthy owner instead of panicking or inventing a
// shard.
func TestRingOwnerExcludingDegenerateMasks(t *testing.T) {
	r, err := NewRing(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for key := int64(0); key < 100; key++ {
		if got, want := r.OwnerExcluding(key, 0b111), r.Owner(key); got != want {
			t.Fatalf("key %d: all-dead mask should fall back to Owner, got %d want %d", key, got, want)
		}
		if got := r.OwnerExcluding(key, ^uint64(0)); got != r.Owner(key) {
			t.Fatalf("key %d: full mask should fall back to Owner, got %d", key, got)
		}
	}
}

// TestCompactTombstonesChurn churns 10k members through join+leave and
// pins that GC holds the table to the live working set: without
// compaction the table keeps one tombstone per departed member, with it
// the size stays bounded by the horizon.
func TestCompactTombstonesChurn(t *testing.T) {
	tbl := NewMemberTable(0)
	const members = 10_000
	const horizon = 512
	for id := 0; id < members; id++ {
		tbl.Put(int64(id%16), id, fmt.Sprintf("addr-%d", id))
		if id >= 100 {
			tbl.Remove(int64((id-100)%16), id-100) // all but the trailing 100 leave again
		}
		if id%64 == 0 {
			tbl.CompactTombstones(horizon)
		}
	}
	tbl.CompactTombstones(horizon)
	// Live set: the trailing 100 members. Tombstones: only those younger
	// than the horizon can remain. 2 ticks per churned member bounds the
	// surviving tombstones by horizon/2.
	if got := tbl.LiveCount(); got != 100 {
		t.Fatalf("live count = %d, want 100", got)
	}
	if got, limit := tbl.Size(), 100+horizon; got > limit {
		t.Fatalf("table size %d exceeds GC bound %d after 10k-member churn", got, limit)
	}
	// And GC must never touch live rows.
	if tbl.Live(int64(members-1)%16) == nil && tbl.LiveCount() == 0 {
		t.Fatal("GC deleted live entries")
	}
}

// TestCompactTombstonesConvergenceSafe: replicas that gossip regularly
// may GC independently and still converge — a tombstone dropped on both
// sides after full propagation cannot resurrect the member.
func TestCompactTombstonesConvergenceSafe(t *testing.T) {
	a, b := NewMemberTable(0), NewMemberTable(1)
	a.Put(1, 7, "x")
	b.Merge(a.Snapshot())
	a.Remove(1, 7)
	b.Merge(a.Snapshot()) // tombstone fully propagated
	// Age both clocks well past the horizon, then GC both sides.
	for i := 0; i < 2000; i++ {
		a.Put(2, 1000+i, "y")
	}
	b.Merge(a.Snapshot())
	const horizon = 512
	if n := a.CompactTombstones(horizon); n == 0 {
		t.Fatal("expected a's tombstone to be collected")
	}
	b.CompactTombstones(horizon)
	// One more gossip round trip in both orders: member 7 must stay gone.
	a.Merge(b.Snapshot())
	b.Merge(a.Snapshot())
	if m := a.Live(1); m != nil {
		t.Fatalf("member resurrected on a after GC: %v", m)
	}
	if m := b.Live(1); m != nil {
		t.Fatalf("member resurrected on b after GC: %v", m)
	}
}

// TestLivenessSuspicionDeclaresDeadShard: a shard whose beats freeze is
// declared dead after exactly the suspicion window, in rounds, never
// earlier — and the detector never declares its own shard.
func TestLivenessSuspicionDeclaresDeadShard(t *testing.T) {
	l := NewLiveness(2, 0, 0, 3)
	// Shard 1 beats once, then goes silent.
	l.MergeBeats([]Beat{{Key: 1<<8 | 0, Ver: 1}})
	var diedAt int
	for round := 1; round <= 10; round++ {
		if died := l.Tick(); len(died) > 0 {
			if died[0] != 1 {
				t.Fatalf("declared shard %d dead, want 1", died[0])
			}
			diedAt = round
			break
		}
	}
	if diedAt != 3 {
		t.Fatalf("shard declared dead at round %d, want exactly suspicion=3", diedAt)
	}
	if got := l.DeadMask(); got != 1<<1 {
		t.Fatalf("dead mask = %b, want shard 1 only", got)
	}
	if got := l.Epoch(); got != 1 {
		t.Fatalf("epoch = %d after one transition, want 1", got)
	}
}

// TestLivenessRevivalOnBeatAdvance: a beat advancing for a dead-declared
// shard revives it, bumps the epoch again, and the revival's LWW stamp
// outranks the death when gossiped back.
func TestLivenessRevivalOnBeatAdvance(t *testing.T) {
	l := NewLiveness(2, 0, 0, 2)
	for i := 0; i < 4; i++ {
		l.Tick()
	}
	if l.DeadMask() != 1<<1 {
		t.Fatalf("setup: shard 1 should be dead, mask=%b", l.DeadMask())
	}
	revived := l.MergeBeats([]Beat{{Key: 1 << 8, Ver: 5}})
	if len(revived) != 1 || revived[0] != 1 {
		t.Fatalf("revived = %v, want [1]", revived)
	}
	if l.DeadMask() != 0 {
		t.Fatalf("dead mask = %b after revival, want 0", l.DeadMask())
	}
	if l.Epoch() != 2 {
		t.Fatalf("epoch = %d after death+revival, want 2", l.Epoch())
	}
	// A peer that still holds the stale death verdict loses the merge.
	stale := NewLiveness(2, 0, 1, 2)
	for i := 0; i < 4; i++ {
		stale.Tick()
	}
	stale.MergeStatus(l.Status(), l.Epoch())
	if stale.DeadMask() != 0 {
		t.Fatalf("stale replica kept the death verdict after merging the revival")
	}
}

// TestLivenessStatusMergeConverges: two detectors that independently
// declare different shards converge to the same status set, dead mask
// and epoch after exchanging snapshots in either order.
func TestLivenessStatusMergeConverges(t *testing.T) {
	a := NewLiveness(4, 0, 0, 2)
	b := NewLiveness(4, 1, 0, 2)
	// Keep each other alive, let shards 2 and 3 go dark.
	for i := 0; i < 4; i++ {
		a.MergeBeats(b.Beats())
		b.MergeBeats(a.Beats())
		a.Tick()
		b.Tick()
	}
	if a.DeadMask() == 0 || b.DeadMask() == 0 {
		t.Fatalf("setup: both sides should have declared deaths (a=%b b=%b)", a.DeadMask(), b.DeadMask())
	}
	a.MergeStatus(b.Status(), b.Epoch())
	b.MergeStatus(a.Status(), a.Epoch())
	a.MergeStatus(b.Status(), b.Epoch())
	b.MergeStatus(a.Status(), a.Epoch())
	if !reflect.DeepEqual(a.Status(), b.Status()) {
		t.Fatalf("status diverged:\na=%v\nb=%v", a.Status(), b.Status())
	}
	if a.DeadMask() != b.DeadMask() || a.DeadMask() != 0b1100 {
		t.Fatalf("dead masks: a=%b b=%b, want both 1100", a.DeadMask(), b.DeadMask())
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("epochs diverged: a=%d b=%d", a.Epoch(), b.Epoch())
	}
}

// TestLivenessRejectsOwnShardDeath: a replica never adopts a death
// verdict about its own shard from gossip — it is alive to refute it.
func TestLivenessRejectsOwnShardDeath(t *testing.T) {
	l := NewLiveness(2, 1, 0, 2)
	l.MergeStatus([]ShardStatus{{Shard: 1, Dead: true, Ver: 1 << 8}}, 1)
	if l.DeadMask() != 0 {
		t.Fatalf("replica adopted its own shard's death: mask=%b", l.DeadMask())
	}
}

// TestPartitionHealZeroLossMerge pins the acceptance criterion at the
// table layer, byte for byte: two replicas that take disjoint writes
// while cut apart and then merge on heal produce exactly the snapshot a
// never-partitioned run (same writes, then gossip) produces. Stamps are
// (local clock, node) pairs, so identical per-replica write sequences
// yield identical versions whether or not gossip ran in between — the
// healed table is indistinguishable from the unpartitioned one.
func TestPartitionHealZeroLossMerge(t *testing.T) {
	writes := func(a, b *MemberTable) {
		for i := 0; i < 200; i++ {
			a.Put(int64(i%7), i, fmt.Sprintf("a-%d", i))
			b.Put(int64(i%5), 10_000+i, fmt.Sprintf("b-%d", i))
			if i%3 == 0 {
				a.Remove(int64(i%7), i)
			}
		}
	}
	snap := func(tb *MemberTable) []byte {
		j, err := json.Marshal(tb.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	// Reference: both replicas take their writes, then full gossip.
	ra, rb := NewMemberTable(0), NewMemberTable(1)
	writes(ra, rb)
	ra.Merge(rb.Snapshot())
	rb.Merge(ra.Snapshot())
	want := snap(ra)
	if string(want) != string(snap(rb)) {
		t.Fatal("reference replicas did not converge")
	}

	// Partitioned: identical writes land while the cut is up (no gossip),
	// then heal and merge both directions.
	pa, pb := NewMemberTable(0), NewMemberTable(1)
	writes(pa, pb)
	if string(snap(pa)) == string(want) {
		t.Fatal("sanity: side a should be missing side b's writes before heal")
	}
	pa.Merge(pb.Snapshot())
	pb.Merge(pa.Snapshot())
	if got := snap(pa); string(got) != string(want) {
		t.Fatalf("healed side a diverges from full-gossip reference\n got %s\nwant %s", got, want)
	}
	if got := snap(pb); string(got) != string(want) {
		t.Fatalf("healed side b diverges from full-gossip reference\n got %s\nwant %s", got, want)
	}
}
