// Package ctrl is the control-plane layer behind the emulated cluster:
// a rendezvous-hash ring mapping channel keys to tracker shards, a
// directory of shard replica endpoints, a versioned membership table with
// tombstones that replicas reconcile by anti-entropy gossip, and a seeded
// sibling selector driving the gossip schedule.
//
// The paper's per-community hierarchy hands the control plane its natural
// shard key: every tracker-path operation is keyed by the channel (or by
// the channel owning the video), the same key the sharded event engine
// partitions on. Sharding by channel keeps each community's membership
// state on one shard, so a join and the lookups it feeds never straddle
// shards.
//
// Replicas of one shard are deliberately NOT in the ring: the ring hashes
// channels to shard indices only, so growing a shard from one replica to
// three never moves a single channel. Replica choice is a client-side
// failover walk over the shard's endpoint list.
package ctrl

import (
	"fmt"
	"sort"
)

// Ring maps int64 keys (channel ids) to shard indices by rendezvous
// (highest-random-weight) hashing: every key scores each shard with a
// seeded mix and picks the argmax. Deterministic for one (seed, shards)
// pair, uniform in the limit, and minimally disruptive when a shard is
// added — only keys whose new shard wins move.
type Ring struct {
	seed   int64
	shards int
}

// NewRing builds a ring over shards shards. shards must be >= 1.
func NewRing(seed int64, shards int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("ctrl: ring needs >= 1 shard, got %d", shards)
	}
	return &Ring{seed: seed, shards: shards}, nil
}

// Shards returns the number of shards the ring hashes over.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard index in [0, Shards()) owning key.
func (r *Ring) Owner(key int64) int {
	if r.shards == 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	for s := 0; s < r.shards; s++ {
		score := mix64(uint64(r.seed)*0x9E3779B97F4A7C15 ^ uint64(key)<<1 ^ uint64(s)*0xBF58476D1CE4E5B9)
		if s == 0 || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// OwnerExcluding returns the shard owning key when the shards named by
// the dead bitmask (bit s set = shard s dead) are removed from the ring:
// the HRW argmax over the survivors only. Because rendezvous hashing
// scores every (key, shard) pair independently, removing a shard moves
// exactly that shard's keys — each surviving key's argmax is unchanged —
// and re-adding it restores the original assignment bit for bit. With an
// empty mask, or one that would kill every shard, it falls back to the
// plain owner (a caller with a nonsense mask gets the healthy answer,
// not a panic). Shards >= 64 are always treated as live.
func (r *Ring) OwnerExcluding(key int64, dead uint64) int {
	if dead == 0 || r.shards == 1 {
		return r.Owner(key)
	}
	best, bestScore, found := 0, uint64(0), false
	for s := 0; s < r.shards; s++ {
		if s < 64 && dead&(1<<uint(s)) != 0 {
			continue
		}
		score := mix64(uint64(r.seed)*0x9E3779B97F4A7C15 ^ uint64(key)<<1 ^ uint64(s)*0xBF58476D1CE4E5B9)
		if !found || score > bestScore {
			best, bestScore, found = s, score, true
		}
	}
	if !found {
		return r.Owner(key)
	}
	return best
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer, plenty for spreading a few hundred channel keys over a handful
// of shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Directory is the client-side view of the control plane: the ring plus
// the replica endpoint lists, one per shard. Immutable after construction;
// peers share one directory by value semantics (it is never mutated).
type Directory struct {
	ring     *Ring
	replicas [][]string // replicas[shard][replica] = endpoint address
	total    int
}

// NewDirectory builds a directory over the given replica endpoint lists.
// replicas[i] holds shard i's endpoints in failover order; every shard
// needs at least one endpoint.
func NewDirectory(seed int64, replicas [][]string) (*Directory, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("ctrl: directory needs >= 1 shard")
	}
	ring, err := NewRing(seed, len(replicas))
	if err != nil {
		return nil, err
	}
	total := 0
	for i, reps := range replicas {
		if len(reps) == 0 {
			return nil, fmt.Errorf("ctrl: shard %d has no replicas", i)
		}
		for j, addr := range reps {
			if addr == "" {
				return nil, fmt.Errorf("ctrl: shard %d replica %d has empty address", i, j)
			}
		}
		total += len(reps)
	}
	cp := make([][]string, len(replicas))
	for i, reps := range replicas {
		cp[i] = append([]string(nil), reps...)
	}
	return &Directory{ring: ring, replicas: cp, total: total}, nil
}

// NumShards returns the number of shards.
func (d *Directory) NumShards() int { return len(d.replicas) }

// Owner returns the shard index owning key.
func (d *Directory) Owner(key int64) int { return d.ring.Owner(key) }

// OwnerExcluding returns the shard owning key with the dead-bitmask
// shards removed from the ring; see Ring.OwnerExcluding.
func (d *Directory) OwnerExcluding(key int64, dead uint64) int {
	return d.ring.OwnerExcluding(key, dead)
}

// Replicas returns shard's endpoints in failover order. The returned
// slice is shared; callers must not mutate it.
func (d *Directory) Replicas(shard int) []string { return d.replicas[shard] }

// Endpoints returns the total endpoint count across all shards.
func (d *Directory) Endpoints() int { return d.total }

// EndpointIndex returns a stable flat index for (shard, replica), usable
// as a circuit-breaker id: shards are laid out in order, replicas within
// a shard consecutively.
func (d *Directory) EndpointIndex(shard, replica int) int {
	idx := 0
	for s := 0; s < shard; s++ {
		idx += len(d.replicas[s])
	}
	return idx + replica
}

// All returns every endpoint address across all shards, shard-major. Used
// for plane-wide broadcasts (register, leave).
func (d *Directory) All() []string {
	out := make([]string, 0, d.total)
	for _, reps := range d.replicas {
		out = append(out, reps...)
	}
	return out
}

// Gossiper yields the anti-entropy partner schedule for one replica: a
// seeded rotation over its siblings (the other replicas of the same
// shard). Deterministic for one seed, so gossip convergence tests and
// same-seed cluster runs replay identically.
type Gossiper struct {
	siblings []int
	next     int
}

// NewGossiper builds a partner schedule for replica self among n replicas
// of one shard. Returns nil when there is nothing to gossip with (n < 2).
func NewGossiper(seed int64, self, n int) *Gossiper {
	if n < 2 || self < 0 || self >= n {
		return nil
	}
	sib := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != self {
			sib = append(sib, i)
		}
	}
	// A seeded rotation start keeps replicas from thundering at the same
	// sibling; the walk itself is round-robin so no sibling starves.
	off := int(mix64(uint64(seed)^uint64(self)*0x9E3779B97F4A7C15) % uint64(len(sib)))
	sort.Ints(sib)
	g := &Gossiper{siblings: sib, next: off}
	return g
}

// Next returns the replica index to gossip with this round.
func (g *Gossiper) Next() int {
	p := g.siblings[g.next%len(g.siblings)]
	g.next++
	return p
}
