// Package metrics collects and summarizes experiment measurements:
// streaming samples, percentile extraction and the plain-text tables the
// benchmark harness prints for each figure of the paper.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates float64 observations and answers percentile queries.
// The zero value is ready to use.
//
// Memory: a Sample keeps every observation (plus a lazily built sorted
// copy), so it holds O(N) float64s — 16 bytes per observation worst case.
// That is the right trade for per-node or per-event series whose size is
// bounded by the population (peer bandwidth, links-by-index, repair
// latency), and it is what makes exact interpolated percentiles possible.
// It is the wrong trade for per-request series at scale-sweep sizes
// (1M+ users × sessions × videos): those paths use obs.Hist, a bounded
// log-bucketed histogram with O(buckets) memory and ≤~1.6% relative
// quantile error, instead.
type Sample struct {
	// values stays in insertion order for the Sample's whole life:
	// Values() must not depend on whether a percentile was queried
	// first.
	values []float64
	// sorted is an ascending copy of values, built lazily on the first
	// percentile query and invalidated by Add.
	sorted []float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = nil
}

// AddDuration records a duration observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Mean returns the average, or NaN when empty.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Percentile returns the p-th percentile (0-100), or NaN when empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	if len(s.sorted) != len(s.values) {
		s.sorted = append(s.sorted[:0], s.values...)
		sort.Float64s(s.sorted)
	}
	q := p / 100
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 1 {
		return s.sorted[len(s.sorted)-1]
	}
	pos := q * float64(len(s.sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.sorted[lo]
	}
	frac := pos - float64(lo)
	return s.sorted[lo]*(1-frac) + s.sorted[hi]*frac
}

// Min returns the smallest observation, or NaN when empty.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation, or NaN when empty.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Summary is the JSON form of a Sample: its size and key percentiles. It is
// the one percentile-extraction point shared by the figure builders, the
// experiment results and the emu /metrics endpoint, so every consumer reports
// the same statistics.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P1    float64 `json:"p1"`
	P25   float64 `json:"p25"`
	P50   float64 `json:"p50"`
	P75   float64 `json:"p75"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Summary returns the sample's summary (zero-valued when empty).
func (s *Sample) Summary() Summary {
	if s.Len() == 0 {
		return Summary{}
	}
	return Summary{
		Count: s.Len(),
		Mean:  s.Mean(),
		P1:    s.Percentile(1),
		P25:   s.Percentile(25),
		P50:   s.Percentile(50),
		P75:   s.Percentile(75),
		P90:   s.Percentile(90),
		P99:   s.Percentile(99),
		Min:   s.Min(),
		Max:   s.Max(),
	}
}

// Summarize is an alias of Summary, kept for callers that predate it.
func (s *Sample) Summarize() Summary { return s.Summary() }

// MarshalJSON encodes the sample as its Summary.
func (s *Sample) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Summary())
}

// Counter is a named monotonically increasing count.
type Counter struct {
	n int64
}

// MarshalJSON encodes the counter as its value.
func (c *Counter) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.n)
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Addn adds delta (negative deltas are ignored).
func (c *Counter) Addn(delta int64) {
	if delta > 0 {
		c.n += delta
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Table renders aligned plain-text result tables, one per paper
// figure/table, so the bench harness prints rows comparable to the paper.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch {
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// CSV renders the table as comma-separated values (header row first, no
// title), ready for external plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for pad := len(cell); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
