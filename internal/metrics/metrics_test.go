package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Percentile(50)) {
		t.Fatal("empty sample should answer NaN")
	}
	if s.Len() != 0 {
		t.Fatal("empty sample length")
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 50.5}, {100, 100}, {-5, 1}, {200, 100},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max = %v", got)
	}
}

func TestSampleMean(t *testing.T) {
	var s Sample
	s.Add(2)
	s.Add(4)
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
}

func TestSampleAddAfterPercentile(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1)
	if got := s.Min(); got != 1 {
		t.Fatalf("Min after re-add = %v, want 1", got)
	}
}

// TestSampleValuesStableAcrossPercentile pins the call-order
// independence of Values(): Percentile used to sort the observations in
// place, so Values() silently switched from insertion order to sorted
// order after the first percentile query.
func TestSampleValuesStableAcrossPercentile(t *testing.T) {
	var s Sample
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	before := s.Values()
	if got := s.Percentile(50); got != 2 {
		t.Fatalf("Percentile(50) = %v, want 2", got)
	}
	after := s.Values()
	want := []float64{3, 1, 2}
	for i := range want {
		if before[i] != want[i] {
			t.Fatalf("Values() before percentile = %v, want %v", before, want)
		}
		if after[i] != want[i] {
			t.Fatalf("Values() after percentile = %v, want %v (insertion order lost)", after, want)
		}
	}
	// Percentiles stay correct when observations arrive after a query.
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("Min after re-add = %v, want 0", got)
	}
	if got := s.Values()[3]; got != 0 {
		t.Fatalf("Values()[3] = %v, want the appended 0 last", got)
	}
}

func TestSampleAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if got := s.Mean(); got != 1500 {
		t.Fatalf("duration sample = %v ms, want 1500", got)
	}
}

func TestSampleValuesCopy(t *testing.T) {
	var s Sample
	s.Add(7)
	v := s.Values()
	v[0] = 1
	if s.Mean() != 7 {
		t.Fatal("mutating Values() affected the sample")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(5)
	c.Addn(-3) // ignored
	if c.Value() != 6 {
		t.Fatalf("counter = %d, want 6", c.Value())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. X", "protocol", "p50", "delay")
	tb.AddRow("SocialTube", 0.85, 120*time.Millisecond)
	tb.AddRow("NetTube", 0.53, time.Second)
	out := tb.String()
	for _, want := range []string{"Fig. X", "protocol", "SocialTube", "0.850", "NetTube", "120ms", "1s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableNaNRendersDash(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(math.NaN())
	if !strings.Contains(tb.String(), "-") {
		t.Error("NaN should render as dash")
	}
}

func TestFormatFloatRanges(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0.001, "1.00e-03"},
		{0, "0.000"},
		{2e7, "2.000e+07"},
		{3.14159, "3.142"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.in); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// Property: Percentile is monotone in p and bounded by [Min, Max].
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(values []float64) bool {
		var s Sample
		ok := false
		for _, v := range values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		prev := s.Min()
		for p := 0.0; p <= 100; p += 5 {
			cur := s.Percentile(p)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return s.Max() >= s.Min()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleSummarizeAndJSON(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.Count != 100 || sum.P50 != 50.5 || sum.Min != 1 || sum.Max != 100 {
		t.Fatalf("summary wrong: %+v", sum)
	}
	raw, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 100 || back.Mean != sum.Mean {
		t.Fatalf("json round trip: %+v", back)
	}
	var empty Sample
	if got := empty.Summarize(); got.Count != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestCounterJSON(t *testing.T) {
	var c Counter
	c.Addn(7)
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "7" {
		t.Fatalf("counter json = %s", raw)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Fig. X", "a", "b")
	tb.AddRow("plain", 1.5)
	tb.AddRow(`with,comma "quoted"`, 2)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with,comma ""quoted"""`) {
		t.Fatalf("quoting wrong: %q", lines[2])
	}
	if strings.Contains(csv, "Fig. X") {
		t.Fatal("csv must not contain the title")
	}
	if tb.Title() != "Fig. X" {
		t.Fatal("title accessor wrong")
	}
}
