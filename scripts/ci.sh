#!/bin/sh
# CI gate for the SocialTube reproduction.
#
# Build, vet, race-test everything, then run the short allocation
# benchmarks so a regression in the zero-allocation hot paths (flood
# search, per-request work) shows up in the log next to the tests.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== observability package (vet + race, explicitly) =="
go vet ./internal/obs/...
go test -race -count=1 ./internal/obs/...

echo "== fault injection & shutdown paths (race, explicitly) =="
go test -race -count=1 -run 'Fault|Churn|Outage|Crash|Burst|Ctx|Cancel|Scenario|Releases|Compile|Validate|HelperPlans' \
	./internal/faults/ ./internal/emu/ ./internal/exp/ .

echo "== resilient delivery path (race, explicitly) =="
go test -race -count=1 -run 'Failover|Handoff|Breaker|Chaos|Retry|Malformed|MidStream|Open|Probation|Streak' \
	./internal/emu/ ./internal/core/ ./internal/health/ ./internal/figures/

echo "== sharded control plane (race, explicitly) =="
# The gossip loop, ring routing, membership merge and the multi-tracker
# shutdown/failover paths under the race detector.
go test -race -count=1 -run 'Gossip|Shard|ControlPlane|Ring|Sync|Exclusive|MemberTable|ReplicaOutage' \
	./internal/ctrl/ ./internal/emu/ ./internal/faults/ ./internal/figures/

echo "== partition-tolerant takeover (race, explicitly) =="
# Liveness suspicion/revival, whole-shard takeover, split-brain
# partition + heal, hinted handoff and preferred-replica demotion under
# the race detector.
go test -race -count=1 -run 'Takeover|Liveness|Partition|Hint|Demotes|Tombstone' \
	./internal/ctrl/ ./internal/emu/ ./internal/faults/ ./internal/figures/

echo "== wire-layer fuzz smoke (30s per target) =="
go test ./internal/emu -run '^$' -fuzz '^FuzzReadMessage$' -fuzztime 30s
go test ./internal/emu -run '^$' -fuzz '^FuzzHandleMessage$' -fuzztime 30s

echo "== sharded engine determinism (race, explicitly) =="
go test -race -count=1 -run 'Sharded|Partition|Epoch|Mailbox' \
	./internal/sim/ ./internal/trace/ ./internal/exp/ ./internal/figures/

echo "== short benchmarks (allocations) =="
go test -run '^$' -bench 'BenchmarkFlood|BenchmarkMeshConnect|BenchmarkNeighbors' -benchtime 100x -benchmem ./internal/overlay/
go test -run '^$' -bench 'BenchmarkRequest|BenchmarkProbe|BenchmarkEngine' -benchtime 100x -benchmem ./internal/core/ ./internal/sim/

echo "== sharded engine bench smoke (1 worker vs GOMAXPROCS) =="
# Wall-clock for the same seeded workload on the sequential loop and the
# full worker pool; on multi-core runners a parallel-speedup regression
# shows up as the workers=max line drifting toward workers=1.
go test -run '^$' -bench 'BenchmarkShardedRun' -benchtime 2x ./internal/exp/

tracetmp=$(mktemp -d)
trap 'rm -rf "$tracetmp"' EXIT

echo "== scale sweep smoke (small N) =="
go run ./cmd/socialtube-sim -fig scale -bench-out "$tracetmp/BENCH_scale.json" > /dev/null
test -s "$tracetmp/BENCH_scale.json" || { echo "scale sweep emitted no bench points"; exit 1; }

echo "== trace schema (end-to-end golden validation) =="
go run ./cmd/socialtube-sim -fig 16a -trace-out "$tracetmp/run.jsonl" > /dev/null
go run ./cmd/socialtube-sim -trace-check "$tracetmp/run.jsonl"

echo "== span-linked trace view =="
# The same trace, grouped by request span: a freshly generated sim trace
# must contain spans (the engines stamp one per request since schema v2).
spans=$(go run ./cmd/socialtube-sim -trace-spans "$tracetmp/run.jsonl" -trace-max 10 | tail -1)
echo "$spans"
case "$spans" in
"# 0 spans" | "") echo "generated trace contains no request spans"; exit 1 ;;
esac

echo "== sharded-outage smoke (one replica dark, zero failed requests) =="
# A 2x2 control plane with each tracker replica killed in turn: the
# failover walk must keep every request alive, so the bench file's
# down-variant points must all report failed == 0.
go run ./cmd/socialtube-emu -fig outage-shard -peers 12 -sessions 1 -videos 4 -watch 10ms \
	-bench-out "$tracetmp/BENCH_failover.json" > /dev/null
test -s "$tracetmp/BENCH_failover.json" || { echo "sharded-outage figure emitted no bench points"; exit 1; }
grep -o '"failed":[0-9]*' "$tracetmp/BENCH_failover.json" | grep -v '"failed":0' \
	&& { echo "sharded-outage run lost requests with a replicated shard down"; exit 1; } || true

echo "== takeover smoke (whole shard dead + partition, zero failed requests) =="
# A 2x2 plane losing an entire shard (both replicas) and, separately,
# split into two sides: takeover + hinted handoff must keep every
# request alive, so every point must report failed == 0, and the
# shard-dead point must have measured a declaration (takeoverMs > 0).
go run ./cmd/socialtube-emu -fig takeover -peers 12 -sessions 1 -videos 4 -watch 10ms \
	-bench-out "$tracetmp/BENCH_takeover.json" > /dev/null
test -s "$tracetmp/BENCH_takeover.json" || { echo "takeover figure emitted no bench points"; exit 1; }
grep -o '"failed":[0-9]*' "$tracetmp/BENCH_takeover.json" | grep -v '"failed":0' \
	&& { echo "takeover run lost requests"; exit 1; } || true
grep '"variant":"shard1-dead"' "$tracetmp/BENCH_takeover.json" | grep -q '"takeoverMs":0[,}]' \
	&& { echo "whole-shard death was never declared by a survivor"; exit 1; } || true

echo "== open-loop load path (race, explicitly) =="
# The thinning sampler, the bounded server admission queue, the
# self-clocking arrival chain (shed conservation, worker invariance) and
# the load figure's determinism, under the race detector.
go test -race -count=1 -run 'Steady|Ramp|Sweep|Burst|Diurnal|FlashCrowd|Split|ServerQueue|OpenLoop|Deliver|LoadSweep|FlashPlan' \
	./internal/load/ ./internal/simnet/ ./internal/exp/ ./internal/figures/

echo "== load figure smoke (tiny sweep, canonical-stable points) =="
# Same tiny sweep twice: every emitted line must parse as a point, and
# the two runs must agree byte-for-byte once the env block (wall time,
# workers) is stripped — the canonical form the determinism tests pin.
go run ./cmd/socialtube-sim -fig load -load-rps 3,18 -load-dur 20s \
	-bench-out "$tracetmp/BENCH_load_a.json" > /dev/null
go run ./cmd/socialtube-sim -fig load -load-rps 3,18 -load-dur 20s \
	-bench-out "$tracetmp/BENCH_load_b.json" > /dev/null
test -s "$tracetmp/BENCH_load_a.json" || { echo "load figure emitted no bench points"; exit 1; }
grep -v '"protocol":"' "$tracetmp/BENCH_load_a.json" \
	&& { echo "load bench file contains non-point lines"; exit 1; } || true
sed 's/,"env":{[^}]*}//' "$tracetmp/BENCH_load_a.json" > "$tracetmp/load_a.canon"
sed 's/,"env":{[^}]*}//' "$tracetmp/BENCH_load_b.json" > "$tracetmp/load_b.canon"
cmp -s "$tracetmp/load_a.canon" "$tracetmp/load_b.canon" \
	|| { echo "load bench points not canonical-stable across reruns"; exit 1; }

echo "== timeline figure smoke =="
go run ./cmd/socialtube-sim -fig timeline -bench-out "$tracetmp/BENCH_timeline.json" > /dev/null
test -s "$tracetmp/BENCH_timeline.json" || { echo "timeline figure emitted no bench points"; exit 1; }

echo "== tracing overhead guard (BenchmarkRequest traced vs untraced) =="
# Min-of-3 ns/op for the bare and nop-traced request hot path: the tracing
# seam may cost at most ~10% and must stay at 0 allocs/op.
benchout=$(go test -run '^$' -bench '^(BenchmarkRequest|BenchmarkRequestTraced)$' \
	-count=3 -benchtime 2000x -benchmem ./internal/core/)
echo "$benchout"
echo "$benchout" | awk '
	$1 ~ /^BenchmarkRequestTraced(-|$)/ {
		if (tmin == 0 || $3 < tmin) tmin = $3
		if ($7 > allocs) allocs = $7
		next
	}
	$1 ~ /^BenchmarkRequest(-|$)/ { if (umin == 0 || $3 < umin) umin = $3 }
	END {
		if (umin == 0 || tmin == 0) { print "overhead guard: missing benchmark lines"; exit 1 }
		ratio = tmin / umin
		printf "untraced min %.0f ns/op, traced min %.0f ns/op, ratio %.3f\n", umin, tmin, ratio
		if (allocs > 0) { printf "traced request path allocates %d allocs/op, want 0\n", allocs; exit 1 }
		if (ratio > 1.10) { printf "tracing overhead %.1f%% exceeds the ~10%% budget\n", (ratio - 1) * 100; exit 1 }
	}'

echo "CI OK"
