#!/bin/sh
# CI gate for the SocialTube reproduction.
#
# Build, vet, race-test everything, then run the short allocation
# benchmarks so a regression in the zero-allocation hot paths (flood
# search, per-request work) shows up in the log next to the tests.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== observability package (vet + race, explicitly) =="
go vet ./internal/obs/...
go test -race -count=1 ./internal/obs/...

echo "== fault injection & shutdown paths (race, explicitly) =="
go test -race -count=1 -run 'Fault|Churn|Outage|Crash|Burst|Ctx|Cancel|Scenario|Releases|Compile|Validate|HelperPlans' \
	./internal/faults/ ./internal/emu/ ./internal/exp/ .

echo "== resilient delivery path (race, explicitly) =="
go test -race -count=1 -run 'Failover|Handoff|Breaker|Chaos|Retry|Malformed|MidStream|Open|Probation|Streak' \
	./internal/emu/ ./internal/core/ ./internal/health/ ./internal/figures/

echo "== wire-layer fuzz smoke (30s per target) =="
go test ./internal/emu -run '^$' -fuzz '^FuzzReadMessage$' -fuzztime 30s
go test ./internal/emu -run '^$' -fuzz '^FuzzHandleMessage$' -fuzztime 30s

echo "== sharded engine determinism (race, explicitly) =="
go test -race -count=1 -run 'Sharded|Partition|Epoch|Mailbox' \
	./internal/sim/ ./internal/trace/ ./internal/exp/ ./internal/figures/

echo "== short benchmarks (allocations) =="
go test -run '^$' -bench 'BenchmarkFlood|BenchmarkMeshConnect|BenchmarkNeighbors' -benchtime 100x -benchmem ./internal/overlay/
go test -run '^$' -bench 'BenchmarkRequest|BenchmarkProbe|BenchmarkEngine' -benchtime 100x -benchmem ./internal/core/ ./internal/sim/

echo "== sharded engine bench smoke (1 worker vs GOMAXPROCS) =="
# Wall-clock for the same seeded workload on the sequential loop and the
# full worker pool; on multi-core runners a parallel-speedup regression
# shows up as the workers=max line drifting toward workers=1.
go test -run '^$' -bench 'BenchmarkShardedRun' -benchtime 2x ./internal/exp/

tracetmp=$(mktemp -d)
trap 'rm -rf "$tracetmp"' EXIT

echo "== scale sweep smoke (small N) =="
go run ./cmd/socialtube-sim -fig scale -bench-out "$tracetmp/BENCH_scale.json" > /dev/null
test -s "$tracetmp/BENCH_scale.json" || { echo "scale sweep emitted no bench points"; exit 1; }

echo "== trace schema (end-to-end golden validation) =="
go run ./cmd/socialtube-sim -fig 16a -trace-out "$tracetmp/run.jsonl" > /dev/null
go run ./cmd/socialtube-sim -trace-check "$tracetmp/run.jsonl"

echo "CI OK"
