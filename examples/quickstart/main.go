// Quickstart: generate a synthetic YouTube social-network trace, run the
// SocialTube protocol through the trace-driven simulator, and print the
// paper's three evaluation metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	socialtube "github.com/socialtube/socialtube"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A laptop-sized social network: 150 channels, 400 users.
	traceCfg := socialtube.DefaultTraceConfig()
	traceCfg.Channels = 150
	traceCfg.Users = 400
	traceCfg.Categories = 10
	traceCfg.MaxInterestsPerUser = 10
	tr, err := socialtube.GenerateTrace(traceCfg)
	if err != nil {
		return err
	}
	s := tr.Summarize()
	fmt.Printf("trace: %d channels / %d videos / %d users, views-subs correlation %.2f\n",
		s.Channels, s.Videos, s.Users, s.ViewsSubsCorr)

	// 2. SocialTube with the paper's Table I parameters (N_l=5, N_h=10,
	// TTL=2, prefetch M=3).
	sys, err := socialtube.NewSystem(socialtube.DefaultSystemConfig(), tr)
	if err != nil {
		return err
	}

	// 3. A shortened workload: 3 sessions of 6 videos per user.
	expCfg := socialtube.DefaultExperimentConfig()
	expCfg.Sessions = 3
	expCfg.VideosPerSession = 6
	expCfg.WatchScale = 0.05 // compress playback 20x
	expCfg.MeanOffTime = 60 * time.Second
	expCfg.Horizon = 12 * time.Hour
	res, err := socialtube.RunExperiment(expCfg, tr, sys, socialtube.DefaultNetworkConfig())
	if err != nil {
		return err
	}

	p1, p50, p99 := res.NormalizedPeerBandwidthPercentiles()
	fmt.Printf("requests: %d  (cache %d / peer %d / server %d, prefetch hits %d)\n",
		res.Requests, res.CacheHits.Value(), res.PeerHits.Value(),
		res.ServerHits.Value(), res.PrefixHits.Value())
	fmt.Printf("normalized peer bandwidth: p1=%.2f p50=%.2f p99=%.2f\n", p1, p50, p99)
	fmt.Printf("startup delay: mean %.0f ms, p99 %.0f ms\n",
		res.StartupDelay.Mean(), res.StartupDelay.Percentile(99))
	fmt.Printf("server bytes %d, peer bytes %d\n", res.ServerBytes, res.PeerBytes)
	return nil
}
