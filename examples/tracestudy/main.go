// Tracestudy reproduces the paper's Section III trace analysis on a
// synthetic crawl: it verifies the five observations (O1–O5) that motivate
// SocialTube's design and prints the supporting numbers.
//
//	go run ./examples/tracestudy
package main

import (
	"fmt"
	"log"
	"sort"

	socialtube "github.com/socialtube/socialtube"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func quantile(values []float64, q float64) float64 {
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func run() error {
	cfg := socialtube.DefaultTraceConfig()
	cfg.Channels = 545
	cfg.Users = 2000
	tr, err := socialtube.GenerateTrace(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("synthetic crawl: %d channels, %d videos, %d users\n\n",
		len(tr.Channels), len(tr.Videos), len(tr.Users))

	// O1: uploads accelerate over time (scalability pressure).
	growth := tr.VideoGrowth(10)
	firstHalf, secondHalf := growth[4], growth[9]-growth[4]
	fmt.Printf("O1  uploads accelerate: first half %d videos, second half %d\n",
		firstHalf, secondHalf)

	// O2: channel popularity varies widely and correlates with
	// subscriptions — a channel-based P2P structure pays off.
	subs, views := tr.ViewsVsSubscriptions()
	fmt.Printf("O2  channel-based sharing: views/subscriptions Pearson %.2f; "+
		"subscribers p25=%.0f p75=%.0f\n",
		socialtubePearson(subs, views), quantile(subs, 0.25), quantile(subs, 0.75))

	// O3: video popularity within a channel is Zipf — prefetch the top.
	ch := tr.ChannelPopularityClass(1.0)
	fmt.Printf("O3  within-channel Zipf: top channel %d has %d videos; "+
		"single-prefetch accuracy (25-video channel) %.1f%%, top-4 %.1f%%\n",
		ch.ID, len(ch.Videos),
		100*socialtube.PrefetchAccuracy(25, 1), 100*socialtube.PrefetchAccuracy(25, 4))

	// O4: channels cluster by shared subscribers.
	frac := tr.IntraCategoryEdgeFraction(3)
	fmt.Printf("O4  clustering: %.0f%% of shared-subscriber edges stay within one category\n", 100*frac)

	// O5: channels focus on few categories; users subscribe within their
	// interests.
	perChannel := tr.InterestsPerChannel()
	sims := tr.InterestSimilarities()
	fmt.Printf("O5  focus: median categories/channel %.0f; median interest similarity %.2f\n",
		quantile(perChannel, 0.5), quantile(sims, 0.5))

	// The consequence (Fig. 15): bounded links beat per-video overlays.
	m := socialtube.DefaultMaintenanceModel()
	fmt.Printf("\nFig. 15 model: after 10 videos a NetTube node maintains %.0f links, "+
		"a SocialTube node %.0f\n", m.NetTube(10), m.SocialTube(10))
	return nil
}

// socialtubePearson is a tiny local Pearson implementation so the example
// stays dependent on the public API only.
func socialtubePearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(len(xs))
	my /= float64(len(ys))
	var num, dx, dy float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		dx += (xs[i] - mx) * (xs[i] - mx)
		dy += (ys[i] - my) * (ys[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / (sqrt(dx) * sqrt(dy))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
