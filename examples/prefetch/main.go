// Prefetch studies SocialTube's channel-facilitated popularity-based
// prefetching (§IV-B): it compares the closed-form Zipf prediction with the
// accuracy measured in a live simulation, and shows the startup-delay win.
//
//	go run ./examples/prefetch
package main

import (
	"fmt"
	"log"
	"time"

	socialtube "github.com/socialtube/socialtube"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Closed-form accuracy (the paper quotes 26.2% for one prefetch and
	// 54.6% for 3-4 on a 25-video channel).
	fmt.Println("predicted prefetch accuracy, 25-video channel (Zipf s=1):")
	for m := 1; m <= 5; m++ {
		fmt.Printf("  top-%d prefetched: %.1f%%\n", m, 100*socialtube.PrefetchAccuracy(25, m))
	}

	traceCfg := socialtube.DefaultTraceConfig()
	traceCfg.Channels = 200
	traceCfg.Users = 400
	traceCfg.Categories = 10
	traceCfg.MaxInterestsPerUser = 10
	tr, err := socialtube.GenerateTrace(traceCfg)
	if err != nil {
		return err
	}

	expCfg := socialtube.DefaultExperimentConfig()
	expCfg.Sessions = 3
	expCfg.VideosPerSession = 8
	expCfg.WatchScale = 0.05
	expCfg.MeanOffTime = 60 * time.Second
	expCfg.Horizon = 12 * time.Hour

	fmt.Println("\nmeasured effect of prefetching (SocialTube, simulator):")
	for _, m := range []int{0, 1, 3, 5} {
		sysCfg := socialtube.DefaultSystemConfig()
		sysCfg.PrefetchCount = m
		sys, err := socialtube.NewSystem(sysCfg, tr)
		if err != nil {
			return err
		}
		res, err := socialtube.RunExperiment(expCfg, tr, sys, socialtube.DefaultNetworkConfig())
		if err != nil {
			return err
		}
		nonCache := res.Requests - res.CacheHits.Value()
		hitRate := 0.0
		if nonCache > 0 {
			hitRate = float64(res.PrefixHits.Value()) / float64(nonCache)
		}
		fmt.Printf("  M=%d: prefetch hit rate %.1f%%, mean startup %.0f ms, p99 %.0f ms\n",
			m, 100*hitRate, res.StartupDelay.Mean(), res.StartupDelay.Percentile(99))
	}
	return nil
}
