// Emulation builds a small real-network SocialTube deployment by hand: a
// TCP tracker plus a handful of TCP peers on loopback with injected WAN
// latency, then shows one video travelling server → peer cache → peer
// delivery, and finishes with a full three-protocol cluster comparison.
//
//	go run ./examples/emulation
package main

import (
	"fmt"
	"log"
	"time"

	socialtube "github.com/socialtube/socialtube"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	traceCfg := socialtube.DefaultTraceConfig()
	traceCfg.Channels = 60
	traceCfg.Users = 32
	traceCfg.Categories = 6
	traceCfg.MaxInterestsPerUser = 6
	tr, err := socialtube.GenerateTrace(traceCfg)
	if err != nil {
		return err
	}

	cond := socialtube.DefaultConditions()
	tracker, err := socialtube.NewTracker(socialtube.DefaultTrackerConfig(), tr, cond)
	if err != nil {
		return err
	}
	if err := tracker.Start(); err != nil {
		return err
	}
	defer tracker.Stop()
	fmt.Printf("tracker listening on %s\n", tracker.Addr())

	// Two peers subscribed to the same channel.
	var a, b int
	var v socialtube.VideoID
	for _, ch := range tr.Channels {
		if len(ch.Subscribers) >= 2 && len(ch.Videos) > 0 &&
			int(ch.Subscribers[0]) < 32 && int(ch.Subscribers[1]) < 32 {
			a, b = int(ch.Subscribers[0]), int(ch.Subscribers[1])
			v = ch.Videos[0]
			break
		}
	}
	peerA, err := socialtube.NewPeer(socialtube.DefaultPeerConfig(a, socialtube.ModeSocialTube), tr, tracker.Addr(), cond)
	if err != nil {
		return err
	}
	if err := peerA.Start(); err != nil {
		return err
	}
	defer peerA.Stop()
	peerB, err := socialtube.NewPeer(socialtube.DefaultPeerConfig(b, socialtube.ModeSocialTube), tr, tracker.Addr(), cond)
	if err != nil {
		return err
	}
	if err := peerB.Start(); err != nil {
		return err
	}
	defer peerB.Stop()

	// Peer A fetches the video (server) and caches it; peer B then finds
	// it through the channel overlay.
	recA := peerA.RequestVideo(v)
	peerA.FinishVideo(v)
	fmt.Printf("peer %d fetched video %d from %s in %v\n", a, v, recA.Source, recA.Startup.Round(time.Millisecond))
	recB := peerB.RequestVideo(v)
	peerB.FinishVideo(v)
	fmt.Printf("peer %d fetched video %d from %s in %v (links: %d)\n\n",
		b, v, recB.Source, recB.Startup.Round(time.Millisecond), peerB.Links())

	// Full cluster comparison across the three protocols.
	for _, mode := range []socialtube.Mode{socialtube.ModePAVoD, socialtube.ModeSocialTube, socialtube.ModeNetTube} {
		cfg := socialtube.DefaultClusterConfig(mode)
		cfg.Peers = 16
		cfg.Sessions = 2
		cfg.VideosPerSession = 5
		cfg.WatchTime = 15 * time.Millisecond
		res, err := socialtube.RunCluster(cfg, tr)
		if err != nil {
			return err
		}
		_, p50, _ := res.NormalizedPeerBandwidthPercentiles()
		fmt.Printf("%-11s peer-bandwidth p50 %.2f  startup mean %.0f ms  (cache %d / peer %d / server %d)\n",
			res.Protocol, p50, res.StartupDelay.Mean(), res.CacheHits, res.PeerHits, res.ServerHits)
	}
	return nil
}
