package socialtube_test

import (
	"fmt"

	socialtube "github.com/socialtube/socialtube"
)

// ExamplePrefetchAccuracy reproduces the paper's §IV-B numbers: the
// probability that a prefetched top video is the one watched next.
func ExamplePrefetchAccuracy() {
	fmt.Printf("%.1f%%\n", 100*socialtube.PrefetchAccuracy(25, 1))
	fmt.Printf("%.1f%%\n", 100*socialtube.PrefetchAccuracy(25, 4))
	// Output:
	// 26.2%
	// 54.6%
}

// ExampleDefaultMaintenanceModel shows Fig. 15's crossover: per-video
// overlays beat the hierarchy only for users who watch almost nothing.
func ExampleDefaultMaintenanceModel() {
	m := socialtube.DefaultMaintenanceModel()
	fmt.Printf("SocialTube after 10 videos: %.0f links\n", m.SocialTube(10))
	fmt.Printf("NetTube after 10 videos: %.0f links\n", m.NetTube(10))
	// Output:
	// SocialTube after 10 videos: 27 links
	// NetTube after 10 videos: 90 links
}

// ExampleGenerateTrace builds a small deterministic social network.
func ExampleGenerateTrace() {
	cfg := socialtube.DefaultTraceConfig()
	cfg.Channels = 20
	cfg.Users = 50
	cfg.Categories = 5
	cfg.MaxInterestsPerUser = 5
	tr, err := socialtube.GenerateTrace(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("channels:", len(tr.Channels))
	fmt.Println("users:", len(tr.Users))
	// Output:
	// channels: 20
	// users: 50
}
